"""Basic-window segmentation and query-window alignment.

The basic-window model (§2.2, §3.1) divides each length-``L`` stream into
``L / B`` equal windows. A query window ``w = (e, l)`` selects the ``l``
points ending at timestamp ``e`` (inclusive). Existing DFT systems restrict
``l`` to multiples of ``B`` and its endpoints to window boundaries; TSUBASA's
Lemma 1 supports *arbitrary* query windows by treating the (possibly partial)
first and last basic windows as extra variable-size windows whose statistics
are computed from raw data at query time.

This module owns all of that index arithmetic:

* :class:`BasicWindowPlan` — an equal-size segmentation of ``[0, length)``.
* :class:`QueryWindow` — the ``(end, length)`` query of the paper, with
  validation and conversion to half-open column ranges.
* :class:`WindowSelection` — the result of aligning a query against a plan:
  which fully-covered basic windows to read from the sketch and which raw
  head/tail fragments to sketch on the fly.

Timestamps are integer offsets from the start of the sketched data: the
paper's series are synchronized at a fixed time resolution, so the mapping
between wall-clock timestamps and offsets is a trivial affine transform that
the data layer performs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SegmentationError

__all__ = ["BasicWindowPlan", "QueryWindow", "WindowSelection"]


@dataclass(frozen=True)
class QueryWindow:
    """The paper's query window ``w = (e, l)``.

    Attributes:
        end: Inclusive end offset ``e`` of the query window.
        length: Number of points ``l`` in the window.
    """

    end: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise SegmentationError(f"query window length must be > 0, got {self.length}")
        if self.end - self.length + 1 < 0:
            raise SegmentationError(
                f"query window (end={self.end}, length={self.length}) starts before 0"
            )

    @property
    def start(self) -> int:
        """Inclusive start offset ``e - l + 1``."""
        return self.end - self.length + 1

    @property
    def stop(self) -> int:
        """Exclusive stop offset (``end + 1``), for numpy slicing."""
        return self.end + 1

    def slice(self) -> slice:
        """Half-open column slice covering the query window."""
        return slice(self.start, self.stop)


@dataclass(frozen=True)
class WindowSelection:
    """Alignment of a :class:`QueryWindow` against a :class:`BasicWindowPlan`.

    Attributes:
        full_windows: Indices of basic windows fully inside the query window,
            readable straight from the sketch.
        head: Optional half-open ``(start, stop)`` raw range before the first
            full window (empty tuple when aligned).
        tail: Optional half-open ``(start, stop)`` raw range after the last
            full window (empty tuple when aligned).
    """

    full_windows: np.ndarray
    head: tuple[int, int] | None
    tail: tuple[int, int] | None

    @property
    def is_aligned(self) -> bool:
        """True when the query is exactly a union of basic windows."""
        return self.head is None and self.tail is None

    @property
    def n_segments(self) -> int:
        """Total number of variable-size segments Lemma 1 will combine."""
        return (
            int(self.full_windows.size)
            + (self.head is not None)
            + (self.tail is not None)
        )


@dataclass(frozen=True)
class BasicWindowPlan:
    """Equal-size segmentation of ``[0, length)`` into basic windows.

    The plan tolerates a trailing remainder shorter than ``window_size``
    (kept as a final, smaller window) so that real data sets whose length is
    not a multiple of ``B`` can still be sketched end to end; Lemma 1 handles
    the variable final size natively.

    Attributes:
        length: Total number of points segmented.
        window_size: The basic window size ``B``.
    """

    length: int
    window_size: int

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise SegmentationError(f"basic window size must be > 0, got {self.window_size}")
        if self.length < self.window_size:
            raise SegmentationError(
                f"series length {self.length} shorter than one basic window "
                f"({self.window_size})"
            )

    @property
    def n_windows(self) -> int:
        """Number of basic windows (including a short trailing one, if any)."""
        return -(-self.length // self.window_size)

    @property
    def boundaries(self) -> np.ndarray:
        """Window boundary offsets, shape ``(n_windows + 1,)``."""
        edges = np.arange(0, self.length + 1, self.window_size, dtype=np.int64)
        if edges[-1] != self.length:
            edges = np.append(edges, np.int64(self.length))
        return edges

    @property
    def sizes(self) -> np.ndarray:
        """Per-window sizes ``B_j``, shape ``(n_windows,)``."""
        return np.diff(self.boundaries)

    def window_range(self, index: int) -> tuple[int, int]:
        """Half-open ``(start, stop)`` column range of basic window ``index``."""
        if not 0 <= index < self.n_windows:
            raise SegmentationError(
                f"window index {index} out of range [0, {self.n_windows})"
            )
        bounds = self.boundaries
        return int(bounds[index]), int(bounds[index + 1])

    def window_of(self, offset: int) -> int:
        """Index of the basic window containing point ``offset``."""
        if not 0 <= offset < self.length:
            raise SegmentationError(f"offset {offset} outside [0, {self.length})")
        return min(offset // self.window_size, self.n_windows - 1)

    def align(self, query: QueryWindow) -> WindowSelection:
        """Align an arbitrary query window against this plan (§3.1.1).

        Finds the maximal run of basic windows fully contained in the query
        and exposes the uncovered head/tail fragments as raw ranges to be
        sketched at query time. Aligned queries (the "special case" of
        Lemma 1, and the only case the DFT competitors support) come back
        with no fragments.

        Args:
            query: The query window; must lie inside ``[0, length)``.

        Returns:
            A :class:`WindowSelection` with at least one segment.
        """
        if query.stop > self.length:
            raise SegmentationError(
                f"query window ends at {query.end} but only {self.length} points "
                "are sketched"
            )
        bounds = self.boundaries
        # First basic window starting at or after the query start.
        first_full = int(np.searchsorted(bounds, query.start, side="left"))
        # Last boundary at or before the query stop.
        last_edge = int(np.searchsorted(bounds, query.stop, side="right")) - 1

        if first_full >= last_edge:
            # The query fits strictly inside one or two basic windows with no
            # fully covered window; Lemma 1 degenerates to a single raw segment.
            return WindowSelection(
                full_windows=np.empty(0, dtype=np.int64),
                head=(query.start, query.stop),
                tail=None,
            )

        full = np.arange(first_full, last_edge, dtype=np.int64)
        head_start, head_stop = query.start, int(bounds[first_full])
        tail_start, tail_stop = int(bounds[last_edge]), query.stop
        head = (head_start, head_stop) if head_stop > head_start else None
        tail = (tail_start, tail_stop) if tail_stop > tail_start else None
        return WindowSelection(full_windows=full, head=head, tail=tail)

    def aligned_query(self, first_window: int, n_windows: int) -> QueryWindow:
        """Build the aligned query covering ``n_windows`` starting at ``first_window``.

        Convenience used by benchmarks and the real-time path, where queries
        are expressed directly in basic-window units.
        """
        if n_windows <= 0:
            raise SegmentationError("aligned query must cover at least one window")
        if first_window < 0 or first_window + n_windows > self.n_windows:
            raise SegmentationError(
                f"windows [{first_window}, {first_window + n_windows}) out of range "
                f"[0, {self.n_windows})"
            )
        bounds = self.boundaries
        start = int(bounds[first_window])
        stop = int(bounds[first_window + n_windows])
        return QueryWindow(end=stop - 1, length=stop - start)
