"""Lagged climate networks from basic-window sketches (extension).

The paper's future work points at unaligned time-series; the closest
well-posed instance for synchronized climate data is *lagged* correlation —
``Corr(x_t, y_{t+L})`` — which underlies directed teleconnection analysis
(a pressure anomaly today correlating with rainfall elsewhere weeks later).

TSUBASA's basic-window algebra extends to lags that are multiples of the
basic window size. For lag ``L = k * B`` the aligned products pair window
``j`` of ``x`` with window ``j + k`` of ``y`` at identical within-window
offsets, so one extra per-window statistic suffices: the *cross-window
covariance matrix*

    X_k[j][a][b] = cov(series_a over window j, series_b over window j + k)

(asymmetric: rows live at window ``j``, columns at ``j + k``; ``k = 0``
recovers the standard sketch). Lemma 1 then combines exactly as before, with
the x-side statistics drawn from windows ``j`` and the y-side from windows
``j + k``:

    Corr_L(x, y) = sum_j B_j * (X_k[j] + delta_xj * delta_y(j+k))
                   / sqrt(pooled var of x over its windows)
                   / sqrt(pooled var of y over its windows)

Space grows to ``O((max_lag + 1) * L * N^2 / B)`` — the same per-lag budget
as the paper's sketch. Exactness against direct computation on shifted raw
slices is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.segmentation import BasicWindowPlan
from repro.core.stats import series_window_stats
from repro.exceptions import DataError, SketchError

__all__ = [
    "LaggedSketch",
    "build_lagged_sketch",
    "lagged_correlation_matrix",
    "lagged_network",
]


@dataclass
class LaggedSketch:
    """Basic-window statistics extended with cross-window covariances.

    Attributes:
        names: Series identifiers, in row order.
        window_size: Basic window size ``B``.
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        cross_covs: One array per lag ``k = 0..max_lag``; entry ``k`` has
            shape ``(ns - k, n, n)`` with slice ``j`` holding the covariance
            of window ``j`` (rows) against window ``j + k`` (columns).
        sizes: Per-window sizes, shape ``(ns,)``.
    """

    names: list[str]
    window_size: int
    means: np.ndarray
    stds: np.ndarray
    cross_covs: list[np.ndarray]
    sizes: np.ndarray

    def __post_init__(self) -> None:
        n, ns = self.means.shape
        if len(self.names) != n:
            raise SketchError(f"{len(self.names)} names for {n} series")
        if self.stds.shape != (n, ns):
            raise SketchError(f"stds shape {self.stds.shape} != ({n}, {ns})")
        for k, covs in enumerate(self.cross_covs):
            if covs.shape != (ns - k, n, n):
                raise SketchError(
                    f"lag-{k} cross covariances have shape {covs.shape}, "
                    f"expected ({ns - k}, {n}, {n})"
                )

    @property
    def n_series(self) -> int:
        """Number of sketched series."""
        return self.means.shape[0]

    @property
    def n_windows(self) -> int:
        """Number of sketched basic windows."""
        return self.means.shape[1]

    @property
    def max_lag(self) -> int:
        """Largest sketched lag, in basic windows."""
        return len(self.cross_covs) - 1


def build_lagged_sketch(
    data: np.ndarray,
    window_size: int,
    max_lag: int,
    names: list[str] | None = None,
) -> LaggedSketch:
    """Sketch a collection with cross-window covariances up to ``max_lag``.

    Only equal-size basic windows are supported (a trailing remainder is
    dropped): cross-window products require identical within-window offsets.

    Args:
        data: ``(n, L)`` matrix of synchronized series.
        window_size: Basic window size ``B``.
        max_lag: Largest lag (in basic windows) to sketch; lag 0 is always
            included and reproduces the standard exact sketch.
        names: Optional series identifiers.

    Returns:
        The :class:`LaggedSketch`.
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
    if max_lag < 0:
        raise DataError(f"max_lag must be >= 0, got {max_lag}")
    usable = (matrix.shape[1] // window_size) * window_size
    if usable == 0:
        raise DataError(
            f"series of length {matrix.shape[1]} shorter than one basic "
            f"window ({window_size})"
        )
    matrix = matrix[:, :usable]
    plan = BasicWindowPlan(length=usable, window_size=window_size)
    ns = plan.n_windows
    if max_lag >= ns:
        raise DataError(f"max_lag {max_lag} needs more than {ns} basic windows")
    bounds = plan.boundaries
    means, stds, sizes = series_window_stats(matrix, bounds)

    centered = [
        matrix[:, bounds[j] : bounds[j + 1]]
        - matrix[:, bounds[j] : bounds[j + 1]].mean(axis=1, keepdims=True)
        for j in range(ns)
    ]
    cross_covs = []
    for k in range(max_lag + 1):
        covs = np.empty((ns - k, matrix.shape[0], matrix.shape[0]))
        for j in range(ns - k):
            covs[j] = centered[j] @ centered[j + k].T / window_size
        cross_covs.append(covs)

    if names is None:
        names = [f"s{i:04d}" for i in range(matrix.shape[0])]
    return LaggedSketch(
        names=list(names),
        window_size=window_size,
        means=means,
        stds=stds,
        cross_covs=cross_covs,
        sizes=sizes,
    )


def lagged_correlation_matrix(
    sketch: LaggedSketch,
    lag: int,
    first_window: int = 0,
    n_windows: int | None = None,
) -> CorrelationMatrix:
    """Exact lagged all-pairs correlation from the sketch.

    Entry ``(a, b)`` is ``Corr(series_a over windows [first, first + nw),
    series_b over windows [first + lag, first + lag + nw))`` — i.e. series
    ``b`` leads by ``lag * B`` points. The matrix is *not* symmetric for
    ``lag > 0``; ``(b, a)`` holds the opposite lead.

    Args:
        sketch: A :class:`LaggedSketch` covering the requested lag.
        lag: Lag in basic windows (0..``sketch.max_lag``).
        first_window: First x-side basic window of the query.
        n_windows: Number of x-side windows; defaults to the maximum that
            fits (``ns - lag - first_window``).

    Returns:
        A labeled correlation matrix (unit diagonal only when ``lag = 0``).
    """
    if not 0 <= lag <= sketch.max_lag:
        raise SketchError(
            f"lag {lag} not sketched (max_lag={sketch.max_lag})"
        )
    ns = sketch.n_windows
    if n_windows is None:
        n_windows = ns - lag - first_window
    if n_windows <= 0 or first_window < 0 or first_window + n_windows + lag > ns:
        raise SketchError(
            f"window range [{first_window}, {first_window + n_windows}) at "
            f"lag {lag} exceeds {ns} sketched windows"
        )

    x_idx = np.arange(first_window, first_window + n_windows)
    y_idx = x_idx + lag
    sizes = sketch.sizes[x_idx].astype(np.float64)
    total = float(sizes.sum())

    means_x = sketch.means[:, x_idx]
    means_y = sketch.means[:, y_idx]
    stds_x = sketch.stds[:, x_idx]
    stds_y = sketch.stds[:, y_idx]
    grand_x = means_x @ sizes / total
    grand_y = means_y @ sizes / total
    delta_x = means_x - grand_x[:, None]
    delta_y = means_y - grand_y[:, None]

    covs = sketch.cross_covs[lag][first_window : first_window + n_windows]
    numer = np.einsum("j,jab->ab", sizes, covs)
    numer += (delta_x * sizes) @ delta_y.T

    var_x = np.sum(sizes * (stds_x**2 + delta_x**2), axis=1)
    var_y = np.sum(sizes * (stds_y**2 + delta_y**2), axis=1)
    scale = np.sqrt(np.maximum(var_x, 0.0))[:, None] * np.sqrt(
        np.maximum(var_y, 0.0)
    )[None, :]

    corr = np.zeros((sketch.n_series, sketch.n_series))
    np.divide(numer, scale, out=corr, where=scale > 0.0)
    np.clip(corr, -1.0, 1.0, out=corr)
    if lag == 0:
        np.fill_diagonal(corr, 1.0)
    return CorrelationMatrix(names=list(sketch.names), values=corr)


def lagged_network(
    sketch: LaggedSketch,
    lag: int,
    theta: float,
    first_window: int = 0,
    n_windows: int | None = None,
) -> ClimateNetwork:
    """Threshold a lagged correlation matrix into a network.

    For ``lag > 0`` an (undirected) edge is kept when the correlation in
    *either* lead direction exceeds ``theta``; the stronger direction's value
    becomes the edge weight.
    """
    matrix = lagged_correlation_matrix(sketch, lag, first_window, n_windows)
    values = matrix.values
    stronger = np.maximum(values, values.T)
    merged = CorrelationMatrix(names=list(sketch.names), values=stronger)
    return ClimateNetwork.from_matrix(merged, theta)
