"""Basic-window statistics (the TSUBASA "sketch" primitives).

TSUBASA sketches every basic window of every series with two numbers (mean and
population standard deviation) and every aligned basic window of every *pair*
of series with one number (the Pearson correlation inside that window).
Lemma 1 of the paper recombines exactly these quantities into the exact
Pearson correlation over any union of basic windows.

This module provides:

* :class:`WindowStats` — (mean, std, size) of one basic window of one series.
* :class:`PairWindowStats` — per-window pair statistics (correlation and the
  equivalent covariance).
* Vectorized helpers that compute the per-window statistics for a whole
  ``(n_series, length)`` matrix in one pass (`Algorithm 1` of the paper).
* A numerically careful streaming accumulator (:class:`RunningWindowStats`,
  Welford's algorithm extended with a co-moment) used by the real-time
  ingestion path where data arrives value by value.

All standard deviations are *population* (``ddof=0``) ones: the algebra of
Lemma 1 (pooled variance / covariance decompositions) only closes with the
biased estimator. Tests assert exact agreement with ``numpy.corrcoef``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "WindowStats",
    "PairWindowStats",
    "window_stats",
    "pair_window_stats",
    "series_window_stats",
    "pairwise_window_covariances",
    "pairwise_window_correlations",
    "RunningWindowStats",
    "RunningPairStats",
]


@dataclass(frozen=True)
class WindowStats:
    """Sufficient statistics of one basic window of one series.

    Attributes:
        mean: Arithmetic mean of the window values.
        std: Population standard deviation (``ddof=0``).
        size: Number of data points in the window.
    """

    mean: float
    std: float
    size: int

    @property
    def var(self) -> float:
        """Population variance of the window."""
        return self.std * self.std

    @property
    def total(self) -> float:
        """Sum of the window values (``size * mean``)."""
        return self.size * self.mean

    @property
    def sum_sq(self) -> float:
        """Sum of squared values, recovered from mean/std/size."""
        return self.size * (self.var + self.mean * self.mean)


@dataclass(frozen=True)
class PairWindowStats:
    """Pair statistics of one aligned basic window of two series.

    The paper's sketch stores the per-window Pearson correlation ``c_j``.
    We additionally carry the per-window covariance, which is what Lemma 1
    actually consumes (``sigma_xj * sigma_yj * c_j``); keeping it explicit
    sidesteps the 0/0 ambiguity of ``c_j`` when a window is constant.

    Attributes:
        corr: Pearson correlation of the two windows (0.0 when either window
            is constant — the covariance is 0 in that case, so Lemma 1 is
            unaffected by this convention).
        cov: Population covariance of the two windows.
        size: Number of data points in the window.
    """

    corr: float
    cov: float
    size: int


def _as_window(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DataError(f"expected a 1-D window, got shape {arr.shape}")
    if arr.size == 0:
        raise DataError("cannot compute statistics of an empty window")
    if not np.all(np.isfinite(arr)):
        raise DataError("window contains NaN or infinite values")
    return arr


def window_stats(values: np.ndarray) -> WindowStats:
    """Compute :class:`WindowStats` for a single 1-D window.

    Args:
        values: Window values; must be 1-D, non-empty, and finite.

    Returns:
        The (mean, population std, size) triple of the window.
    """
    arr = _as_window(values)
    return WindowStats(mean=float(arr.mean()), std=float(arr.std()), size=arr.size)


def pair_window_stats(x: np.ndarray, y: np.ndarray) -> PairWindowStats:
    """Compute :class:`PairWindowStats` for an aligned pair of 1-D windows.

    Args:
        x: First window.
        y: Second window; must have the same length as ``x``.

    Returns:
        Per-window correlation and covariance of the pair.
    """
    ax = _as_window(x)
    ay = _as_window(y)
    if ax.size != ay.size:
        raise DataError(
            f"aligned windows must have equal length ({ax.size} != {ay.size})"
        )
    cov = float(np.mean((ax - ax.mean()) * (ay - ay.mean())))
    denom = float(ax.std() * ay.std())
    corr = cov / denom if denom > 0.0 else 0.0
    return PairWindowStats(corr=corr, cov=cov, size=ax.size)


def series_window_stats(
    data: np.ndarray, boundaries: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-basic-window mean and std for a whole series matrix in one pass.

    Args:
        data: ``(n_series, length)`` matrix of synchronized series.
        boundaries: Window boundary offsets, shape ``(ns + 1,)``; window ``j``
            covers columns ``boundaries[j]:boundaries[j + 1]``.

    Returns:
        ``(means, stds, sizes)`` where ``means`` and ``stds`` have shape
        ``(n_series, ns)`` and ``sizes`` has shape ``(ns,)``.
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
    bounds = np.asarray(boundaries, dtype=np.int64)
    sizes = np.diff(bounds)
    if sizes.size == 0 or np.any(sizes <= 0):
        raise DataError("window boundaries must be strictly increasing")
    if bounds[0] != 0 or bounds[-1] > matrix.shape[1]:
        raise DataError("window boundaries fall outside the series matrix")

    n_windows = sizes.size
    means = np.empty((matrix.shape[0], n_windows), dtype=np.float64)
    stds = np.empty_like(means)
    for j in range(n_windows):
        block = matrix[:, bounds[j] : bounds[j + 1]]
        means[:, j] = block.mean(axis=1)
        stds[:, j] = block.std(axis=1)
    return means, stds, sizes


def pairwise_window_covariances(
    data: np.ndarray, boundaries: np.ndarray
) -> np.ndarray:
    """All-pair per-window population covariances.

    For each basic window ``j`` this computes the full ``n x n`` covariance
    matrix of the series restricted to that window, which is the pairwise part
    of the TSUBASA sketch (``sigma_xj * sigma_yj * c_j`` for every pair).

    Args:
        data: ``(n_series, length)`` matrix.
        boundaries: Window boundary offsets, shape ``(ns + 1,)``.

    Returns:
        Array of shape ``(ns, n_series, n_series)``; slice ``j`` is the
        covariance matrix of window ``j``.
    """
    matrix = np.asarray(data, dtype=np.float64)
    bounds = np.asarray(boundaries, dtype=np.int64)
    sizes = np.diff(bounds)
    n_series = matrix.shape[0]
    covs = np.empty((sizes.size, n_series, n_series), dtype=np.float64)
    for j in range(sizes.size):
        block = matrix[:, bounds[j] : bounds[j + 1]]
        centered = block - block.mean(axis=1, keepdims=True)
        covs[j] = centered @ centered.T / sizes[j]
    return covs


def pairwise_window_correlations(
    data: np.ndarray, boundaries: np.ndarray
) -> np.ndarray:
    """All-pair per-window Pearson correlations (the paper's ``c_j``).

    Constant windows (zero std) yield correlation 0 for the pairs involving
    them, matching the :func:`pair_window_stats` convention.

    Args:
        data: ``(n_series, length)`` matrix.
        boundaries: Window boundary offsets.

    Returns:
        Array of shape ``(ns, n_series, n_series)``.
    """
    covs = pairwise_window_covariances(data, boundaries)
    _, stds, __ = series_window_stats(data, boundaries)
    corrs = np.zeros_like(covs)
    for j in range(covs.shape[0]):
        denom = np.outer(stds[:, j], stds[:, j])
        np.divide(covs[j], denom, out=corrs[j], where=denom > 0.0)
    return corrs


class RunningWindowStats:
    """Streaming mean/variance accumulator (Welford's algorithm).

    Used by the ingestion path to sketch a basic window while its values
    arrive one at a time, without buffering more than is needed.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        if not np.isfinite(value):
            raise DataError("cannot push a NaN or infinite value")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        """Number of observations pushed so far."""
        return self._count

    def snapshot(self) -> WindowStats:
        """Freeze the accumulator into a :class:`WindowStats`."""
        if self._count == 0:
            raise DataError("no observations pushed yet")
        return WindowStats(
            mean=self._mean,
            std=float(np.sqrt(max(self._m2, 0.0) / self._count)),
            size=self._count,
        )


class RunningPairStats:
    """Streaming pair accumulator: two Welford states plus a co-moment.

    Produces the per-window pair covariance/correlation incrementally, so the
    real-time path can sketch the newest basic window with a single pass and
    O(1) memory per pair.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean_x = 0.0
        self._mean_y = 0.0
        self._m2_x = 0.0
        self._m2_y = 0.0
        self._cmom = 0.0

    def push(self, x: float, y: float) -> None:
        """Fold one aligned observation pair into the accumulator."""
        if not (np.isfinite(x) and np.isfinite(y)):
            raise DataError("cannot push a NaN or infinite value")
        self._count += 1
        dx = x - self._mean_x
        self._mean_x += dx / self._count
        self._m2_x += dx * (x - self._mean_x)
        dy = y - self._mean_y
        self._mean_y += dy / self._count
        dy_new = y - self._mean_y
        self._m2_y += dy * dy_new
        self._cmom += dx * dy_new

    @property
    def count(self) -> int:
        """Number of observation pairs pushed so far."""
        return self._count

    def snapshot(self) -> PairWindowStats:
        """Freeze the accumulator into a :class:`PairWindowStats`."""
        if self._count == 0:
            raise DataError("no observations pushed yet")
        cov = self._cmom / self._count
        std_x = np.sqrt(max(self._m2_x, 0.0) / self._count)
        std_y = np.sqrt(max(self._m2_y, 0.0) / self._count)
        denom = std_x * std_y
        corr = cov / denom if denom > 0.0 else 0.0
        return PairWindowStats(corr=float(corr), cov=float(cov), size=self._count)
