"""Core TSUBASA algorithms: exact sketch-based correlation and networks."""

from repro.core.exact import TsubasaHistorical, query_correlation_row
from repro.core.lagged import (
    LaggedSketch,
    build_lagged_sketch,
    lagged_correlation_matrix,
    lagged_network,
)
from repro.core.lemma1 import (
    combine_matrix,
    combine_matrix_chunked,
    combine_matrix_streaming,
    combine_pair,
    combine_row,
    combine_rows,
)
from repro.core.lemma2 import SlidingCorrelationState, lemma2_update_pair
from repro.core.prefix import (
    PrefixAggregates,
    build_prefix_aggregates,
    combine_matrix_prefix,
    combine_row_prefix,
)
from repro.core.matrix import CorrelationMatrix, count_edges, similarity_ratio
from repro.core.network import ClimateNetwork
from repro.core.pruning import correlation_bounds, prune_threshold_matrix
from repro.core.queries import (
    degree_at_threshold,
    most_anticorrelated_pairs,
    neighbors,
    pairs_in_range,
    top_k_pairs,
)
from repro.core.realtime import TsubasaRealtime
from repro.core.segmentation import BasicWindowPlan, QueryWindow
from repro.core.significance import (
    correlation_pvalues,
    critical_correlation,
    significant_adjacency,
)
from repro.core.sketch import Sketch, build_sketch
from repro.core.sweep import SweepPlan, sliding_networks

__all__ = [
    "TsubasaHistorical",
    "query_correlation_row",
    "LaggedSketch",
    "build_lagged_sketch",
    "lagged_correlation_matrix",
    "lagged_network",
    "degree_at_threshold",
    "most_anticorrelated_pairs",
    "neighbors",
    "pairs_in_range",
    "top_k_pairs",
    "correlation_pvalues",
    "critical_correlation",
    "significant_adjacency",
    "TsubasaRealtime",
    "combine_matrix",
    "combine_matrix_chunked",
    "combine_matrix_streaming",
    "combine_pair",
    "combine_row",
    "combine_rows",
    "SlidingCorrelationState",
    "lemma2_update_pair",
    "PrefixAggregates",
    "build_prefix_aggregates",
    "combine_matrix_prefix",
    "combine_row_prefix",
    "CorrelationMatrix",
    "count_edges",
    "similarity_ratio",
    "ClimateNetwork",
    "correlation_bounds",
    "prune_threshold_matrix",
    "BasicWindowPlan",
    "QueryWindow",
    "Sketch",
    "build_sketch",
    "SweepPlan",
    "sliding_networks",
]
