"""Window sweeps: networks for every hypothesized time-window at once.

The paper's motivating workflow (§1): "The common way for network dynamics
analysis is to construct networks for each hypothesized time-window and
analyze them separately." Issuing one TSUBASA query per position already
avoids touching raw data, but a *sweep* of aligned positions can share work:
with prefix sums over the window axis of the sketch's pooled aggregates
(per-series sums ``S``, sums of squares ``Q``, all-pair cross sums ``P``),
the exact correlation matrix of *any* contiguous window range costs one
subtraction per aggregate — ``O(N^2)`` per position with no per-window loop,
independent of the range length.

:class:`SweepPlan` precomputes the prefixes once (same memory as the sketch)
and then answers arbitrary aligned ranges; :func:`sliding_networks` drives it
over a stride to produce the network-evolution series that
:mod:`repro.analysis.dynamics` consumes.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.sketch import Sketch
from repro.exceptions import SketchError

__all__ = ["SweepPlan", "sliding_networks"]


class SweepPlan:
    """Prefix-summed sketch aggregates for O(N^2)-per-range exact queries.

    Args:
        sketch: The exact sketch to sweep over.
    """

    def __init__(self, sketch: Sketch) -> None:
        if sketch.n_windows == 0:
            raise SketchError("cannot sweep an empty sketch")
        self._names = list(sketch.names)
        n, ns = sketch.n_series, sketch.n_windows
        sizes = sketch.sizes.astype(np.float64)
        means = sketch.means
        stds = sketch.stds

        # Per-window pooled contributions (same algebra as Lemma 2's state).
        s = sizes[None, :] * means                        # (n, ns)
        q = sizes[None, :] * (stds**2 + means**2)         # (n, ns)
        p = sketch.covs + np.einsum("aj,bj->jab", means, means)
        p = p * sizes[:, None, None]                      # (ns, n, n)

        # Prefix sums with a leading zero slot: range [i, j) = prefix[j] - prefix[i].
        self._sum = np.zeros((n, ns + 1))
        self._sum[:, 1:] = np.cumsum(s, axis=1)
        self._sumsq = np.zeros((n, ns + 1))
        self._sumsq[:, 1:] = np.cumsum(q, axis=1)
        self._cross = np.zeros((ns + 1, n, n))
        np.cumsum(p, axis=0, out=self._cross[1:])
        self._totals = np.zeros(ns + 1)
        self._totals[1:] = np.cumsum(sizes)
        self._n_windows = ns

    @property
    def names(self) -> list[str]:
        """Series identifiers, in matrix order."""
        return self._names

    @property
    def n_windows(self) -> int:
        """Number of basic windows available to sweep over."""
        return self._n_windows

    def correlation_matrix(
        self, first_window: int, n_windows: int
    ) -> CorrelationMatrix:
        """Exact matrix over basic windows ``[first, first + n_windows)``.

        Args:
            first_window: First basic window of the range.
            n_windows: Number of basic windows in the range.

        Returns:
            The labeled exact correlation matrix; identical (tested) to a
            Lemma 1 query over the same windows.
        """
        if n_windows <= 0:
            raise SketchError("range must cover at least one basic window")
        if first_window < 0 or first_window + n_windows > self._n_windows:
            raise SketchError(
                f"range [{first_window}, {first_window + n_windows}) outside "
                f"[0, {self._n_windows})"
            )
        lo, hi = first_window, first_window + n_windows
        total = self._totals[hi] - self._totals[lo]
        s = self._sum[:, hi] - self._sum[:, lo]
        q = self._sumsq[:, hi] - self._sumsq[:, lo]
        p = self._cross[hi] - self._cross[lo]

        numer = total * p - np.outer(s, s)
        var = np.maximum(total * q - s**2, 0.0)
        scale = np.sqrt(var)
        denom = np.outer(scale, scale)
        corr = np.zeros_like(numer)
        np.divide(numer, denom, out=corr, where=denom > 0.0)
        np.clip(corr, -1.0, 1.0, out=corr)
        np.fill_diagonal(corr, 1.0)
        return CorrelationMatrix(names=list(self._names), values=corr)

    def network(
        self,
        first_window: int,
        n_windows: int,
        theta: float,
        coordinates: dict[str, tuple[float, float]] | None = None,
    ) -> ClimateNetwork:
        """Thresholded network over the given basic-window range."""
        matrix = self.correlation_matrix(first_window, n_windows)
        return ClimateNetwork.from_matrix(matrix, theta, coordinates)


def sliding_networks(
    sketch: Sketch,
    n_windows: int,
    theta: float,
    stride_windows: int = 1,
    coordinates: dict[str, tuple[float, float]] | None = None,
) -> list[tuple[int, ClimateNetwork]]:
    """Networks for every position of a sliding aligned window.

    Args:
        sketch: The exact sketch to sweep over.
        n_windows: Query window length, in basic windows.
        theta: Correlation threshold.
        stride_windows: Step between consecutive positions.
        coordinates: Optional node positions attached to each network.

    Returns:
        ``(first_window, network)`` pairs, in temporal order.
    """
    if stride_windows <= 0:
        raise SketchError("stride must be positive")
    plan = SweepPlan(sketch)
    if n_windows > plan.n_windows:
        raise SketchError(
            f"window of {n_windows} basic windows exceeds sketched "
            f"{plan.n_windows}"
        )
    positions = range(0, plan.n_windows - n_windows + 1, stride_windows)
    return [
        (first, plan.network(first, n_windows, theta, coordinates))
        for first in positions
    ]
