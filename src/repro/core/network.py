"""Climate network objects (the graph ``N = (G, V)`` of §2.1).

A :class:`ClimateNetwork` couples the thresholded adjacency structure with
node metadata (geographic coordinates, when available) and the edge weights
(correlations). It exports to ``networkx`` for downstream network science
(visualization, community detection, topology analysis — see
:mod:`repro.analysis`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.matrix import CorrelationMatrix, count_edges
from repro.exceptions import DataError

__all__ = ["ClimateNetwork"]


@dataclass
class ClimateNetwork:
    """A thresholded climate network with correlation edge weights.

    Attributes:
        names: Node identifiers (geo-labeled series), in matrix order.
        adjacency: ``(n, n)`` boolean adjacency (no self-loops).
        weights: ``(n, n)`` correlation values backing the edges.
        threshold: The correlation threshold ``theta`` that produced it.
        coordinates: Optional ``name -> (lat, lon)`` node positions.
    """

    names: list[str]
    adjacency: np.ndarray
    weights: np.ndarray
    threshold: float
    coordinates: dict[str, tuple[float, float]] | None = None
    _index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.adjacency = np.asarray(self.adjacency, dtype=bool)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        n = len(self.names)
        if self.adjacency.shape != (n, n):
            raise DataError(
                f"adjacency shape {self.adjacency.shape} does not match {n} names"
            )
        if self.weights.shape != (n, n):
            raise DataError(
                f"weights shape {self.weights.shape} does not match {n} names"
            )
        self._index = {name: i for i, name in enumerate(self.names)}

    @classmethod
    def from_matrix(
        cls,
        matrix: CorrelationMatrix,
        theta: float,
        coordinates: dict[str, tuple[float, float]] | None = None,
    ) -> "ClimateNetwork":
        """Threshold a correlation matrix into a climate network."""
        return cls(
            names=list(matrix.names),
            adjacency=matrix.threshold(theta),
            weights=matrix.values.copy(),
            threshold=theta,
            coordinates=coordinates,
        )

    @property
    def n_nodes(self) -> int:
        """Number of nodes (series/locations)."""
        return len(self.names)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return count_edges(self.adjacency)

    def degree(self, name: str) -> int:
        """Degree of node ``name``."""
        return int(self.adjacency[self._index[name]].sum())

    def degrees(self) -> np.ndarray:
        """Degree of every node, in ``names`` order."""
        return self.adjacency.sum(axis=1).astype(np.int64)

    def has_edge(self, a: str, b: str) -> bool:
        """Whether nodes ``a`` and ``b`` are connected."""
        return bool(self.adjacency[self._index[a], self._index[b]])

    def edge_weight(self, a: str, b: str) -> float:
        """Correlation weight between nodes ``a`` and ``b``."""
        return float(self.weights[self._index[a], self._index[b]])

    def edge_set(self) -> set[tuple[str, str]]:
        """Set of undirected edges as sorted name pairs."""
        rows, cols = np.nonzero(np.triu(self.adjacency, k=1))
        return {
            (self.names[i], self.names[j])
            for i, j in zip(rows.tolist(), cols.tolist())
        }

    def to_networkx(self) -> nx.Graph:
        """Export to a ``networkx.Graph`` with correlation edge weights.

        Node attributes include ``lat``/``lon`` when coordinates are known.
        """
        graph = nx.Graph()
        for name in self.names:
            attrs = {}
            if self.coordinates and name in self.coordinates:
                attrs["lat"], attrs["lon"] = self.coordinates[name]
            graph.add_node(name, **attrs)
        rows, cols = np.nonzero(np.triu(self.adjacency, k=1))
        for i, j in zip(rows.tolist(), cols.tolist()):
            graph.add_edge(
                self.names[i], self.names[j], weight=float(self.weights[i, j])
            )
        return graph
