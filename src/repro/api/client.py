"""The TSUBASA query client: one facade over every engine and backend.

:class:`TsubasaClient` executes declarative :class:`~repro.api.spec.QuerySpec`
requests against any :class:`~repro.engine.providers.SketchProvider` backend
(in-memory, SQLite store, memory-mapped arrays, chunked on-demand build) and,
optionally, the DFT-based approximate sketch. It is a *planner*: every
operation reduces to one or two correlation matrices plus cheap
post-processing, and a pluggable :class:`QueryPolicy` decides whether each
matrix is computed serially (streaming Lemma 1 through the provider) or
fanned out across processes via
:func:`~repro.parallel.executor.parallel_query`.

The engine classes (:class:`~repro.core.exact.TsubasaHistorical`,
:class:`~repro.approx.network.TsubasaApproximate`) delegate their query
methods here, so the client is *the* implementation of the query surface —
with the default :class:`SerialPolicy` its answers are bit-identical to the
historical engine paths they replaced.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.api.spec import Provenance, QueryResult, QuerySpec, WindowSpec
from repro.core.exact import DEFAULT_CHUNK_WINDOWS, query_correlation_matrix
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.queries import (
    degree_at_threshold,
    most_anticorrelated_pairs,
    neighbors,
    pairs_in_range,
    top_k_pairs,
)
from repro.core.segmentation import BasicWindowPlan, WindowSelection
from repro.engine.providers import SketchProvider
from repro.exceptions import DataError, ServiceError, SketchError

if TYPE_CHECKING:
    from repro.approx.sketch import ApproxSketch

__all__ = [
    "QueryPolicy",
    "SerialPolicy",
    "ParallelPolicy",
    "AutoPolicy",
    "MatrixExecution",
    "TsubasaClient",
]


class QueryPolicy(abc.ABC):
    """Decides how many workers answer one matrix computation.

    A policy sees the spec being planned, the aligned window selection, and
    the provider, and returns a worker count — ``1`` means serial in-process
    execution, anything larger fans out through
    :func:`~repro.parallel.executor.parallel_query`. Selections with raw
    head/tail fragments are always executed serially regardless of the
    policy (the parallel executor consumes aligned selections only).
    """

    @abc.abstractmethod
    def workers(
        self,
        spec: QuerySpec,
        selection: WindowSelection,
        provider: SketchProvider,
    ) -> int:
        """Worker count for this matrix computation (``1`` = serial)."""


class SerialPolicy(QueryPolicy):
    """Always execute serially (the default: zero fork overhead, and answers
    bit-identical to the classic engine paths)."""

    def workers(self, spec, selection, provider):
        return 1


class ParallelPolicy(QueryPolicy):
    """Always fan out aligned queries across ``n_workers`` processes.

    Args:
        n_workers: Worker processes per matrix computation.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise DataError("n_workers must be positive")
        self.n_workers = n_workers

    def workers(self, spec, selection, provider):
        return self.n_workers if selection.is_aligned else 1


class AutoPolicy(QueryPolicy):
    """Fan out only when the selection is large enough to amortize the forks.

    Selections the backend can answer from prefix-aggregate tables
    (:meth:`~repro.engine.providers.SketchProvider.prefix_range`) always
    stay serial: the prefix combination is ``O(n_series^2)`` regardless of
    ``n_windows``, so pre-splitting the window range across processes only
    adds fork overhead to a query that no longer scales with the range.

    Args:
        n_workers: Worker processes used when parallel execution is chosen.
        min_cells: Minimum ``n_series^2 * n_windows`` covariance cells in the
            selection before fan-out pays for itself. The default (50M cells
            = 400 MB of float64 covariances) is calibrated so the benchmark
            workloads in this repository stay serial and real deployments
            (thousands of stations, hundreds of windows) go wide.
    """

    def __init__(self, n_workers: int = 4, min_cells: int = 50_000_000) -> None:
        if n_workers <= 0:
            raise DataError("n_workers must be positive")
        self.n_workers = n_workers
        self.min_cells = min_cells

    def workers(self, spec, selection, provider):
        if not selection.is_aligned:
            return 1
        if provider.prefix_range(selection) is not None:
            return 1
        cells = provider.n_series**2 * int(selection.full_windows.size)
        return self.n_workers if cells >= self.min_cells else 1


@dataclass(frozen=True)
class MatrixExecution:
    """Accounting for one correlation-matrix computation.

    Attributes:
        matrix: The labeled correlation matrix.
        backend: Provider backend name (or ``"approx"``).
        execution: ``"serial"`` or ``"parallel"``.
        n_workers: Workers used.
        seconds: Wall time of the computation.
        path: ``"prefix"`` (prefix-aggregate combination) or ``"direct"``
            (streaming Lemma 1 over the selected windows).
        from_cache: Whether this execution was replayed from the service's
            result cache rather than computed.
        cache_hits: Provider cache hits during the computation.
        cache_misses: Provider cache misses during the computation.
    """

    matrix: CorrelationMatrix
    backend: str
    execution: str
    n_workers: int
    seconds: float
    path: str = "direct"
    from_cache: bool = False
    cache_hits: int = 0
    cache_misses: int = 0


class TsubasaClient:
    """Facade executing :class:`~repro.api.spec.QuerySpec` requests.

    Args:
        provider: Sketch backend answering exact queries. Optional only when
            ``approx_sketch`` is given (an approx-only client).
        approx_sketch: Optional :class:`~repro.approx.sketch.ApproxSketch`
            enabling ``engine="approx"`` specs.
        data: Optional raw ``(n, L)`` matrix overriding the provider's own
            raw data for partial head/tail fragments of non-aligned windows.
        coordinates: Optional ``name -> (lat, lon)`` node positions attached
            to constructed networks.
        policy: Serial/parallel planning policy; default
            :class:`SerialPolicy`.
        chunk_windows: Basic windows per streamed covariance chunk on the
            serial query path.
    """

    def __init__(
        self,
        provider: SketchProvider | None = None,
        approx_sketch: "ApproxSketch | None" = None,
        data: np.ndarray | None = None,
        coordinates: dict[str, tuple[float, float]] | None = None,
        policy: QueryPolicy | None = None,
        chunk_windows: int = DEFAULT_CHUNK_WINDOWS,
    ) -> None:
        if provider is None and approx_sketch is None:
            raise DataError("either a provider or an approx_sketch is required")
        if provider is not None and not isinstance(provider, SketchProvider):
            raise DataError(
                f"expected a SketchProvider, got {type(provider)!r}"
            )
        self._provider = provider
        self._approx = approx_sketch
        self._data = None if data is None else np.asarray(data, dtype=np.float64)
        self._coordinates = coordinates
        self._policy = policy if policy is not None else SerialPolicy()
        self._chunk_windows = chunk_windows
        if provider is not None:
            self._plan = provider.plan
        else:
            self._plan = BasicWindowPlan(
                length=int(approx_sketch.sizes.sum()),
                window_size=approx_sketch.window_size,
            )

    # -- introspection -------------------------------------------------------

    @property
    def provider(self) -> SketchProvider | None:
        """The exact sketch backend (``None`` for approx-only clients)."""
        return self._provider

    @property
    def plan(self) -> BasicWindowPlan:
        """The basic-window segmentation plan queries resolve against."""
        return self._plan

    @property
    def names(self) -> list[str]:
        """Series identifiers, in matrix order."""
        if self._provider is not None:
            return self._provider.names
        return list(self._approx.names)

    @property
    def n_series(self) -> int:
        """Number of sketched series."""
        return len(self.names)

    @property
    def backend(self) -> str:
        """Backend identifier reported in provenance."""
        if self._provider is not None:
            return self._provider.backend_name
        return "approx"

    # -- planning / execution ------------------------------------------------

    def matrix_key(self, spec: QuerySpec, window: WindowSpec) -> tuple:
        """Canonical identity of the matrix computation ``window`` needs.

        Two specs share a key exactly when their matrices are interchangeable
        — the service layer coalesces in-flight computations on it. Window
        forms that select the same points (e.g. ``(end, length)`` vs the
        equivalent ``(start, stop)`` span) map to the same key, and an
        omitted approx method keys identically to the explicit default.
        """
        query = window.resolve(self._plan)
        method = spec.method
        if spec.engine == "approx" and method is None:
            method = "eq5"  # what compute_matrix runs when omitted
        return (query.end, query.length, spec.engine, method)

    def prefetch(self, indices) -> int:
        """Warm the provider's cache for the given basic windows (batched).

        Delegates to :meth:`~repro.engine.providers.SketchProvider.prefetch`;
        returns the number of window records actually read.
        """
        if self._provider is None:
            return 0
        indices = np.asarray(list(indices), dtype=np.int64)
        if indices.size == 0:
            return 0
        return self._provider.prefetch(indices)

    def selection_for(self, window: WindowSpec) -> WindowSelection:
        """Align a window spec against the plan (validates bounds)."""
        return self._plan.align(window.resolve(self._plan))

    def compute_matrix(self, spec: QuerySpec, window: WindowSpec) -> MatrixExecution:
        """Compute the correlation matrix ``spec`` needs over ``window``.

        This is the expensive half of :meth:`execute`, exposed separately so
        the async service can schedule/coalesce it independently of the cheap
        post-processing.
        """
        start = time.perf_counter()
        if spec.engine == "approx":
            matrix = self._approx_matrix(window, spec.method)
            return MatrixExecution(
                matrix=matrix,
                backend="approx",
                execution="serial",
                n_workers=1,
                seconds=time.perf_counter() - start,
            )
        provider = self._provider
        if provider is None:
            raise DataError(
                "this client holds no exact sketch backend; use engine='approx'"
            )
        selection = self._plan.align(window.resolve(self._plan))
        hits0 = getattr(provider, "cache_hits", 0)
        misses0 = getattr(provider, "cache_misses", 0)
        n_workers = max(int(self._policy.workers(spec, selection, provider)), 1)
        path = "direct"
        if n_workers > 1 and selection.is_aligned and selection.full_windows.size:
            from repro.parallel.executor import parallel_query

            result = parallel_query(
                selection.full_windows, n_workers=n_workers, provider=provider
            )
            matrix = result.as_matrix(provider.names)
            execution = "parallel"
        else:
            # Contiguous aligned ranges go through the backend's prefix
            # tables when it has them: O(n^2) per query, independent of the
            # number of selected windows. Everything else streams the direct
            # Lemma 1 reduction.
            bounds = provider.prefix_range(selection)
            if bounds is not None:
                values = provider.prefix_matrix(*bounds)
                path = "prefix"
            else:
                values = query_correlation_matrix(
                    provider,
                    selection,
                    data=self._data,
                    chunk_windows=self._chunk_windows,
                )
            matrix = CorrelationMatrix(names=list(provider.names), values=values)
            execution = "serial"
            n_workers = 1
        return MatrixExecution(
            matrix=matrix,
            backend=provider.backend_name,
            execution=execution,
            n_workers=n_workers,
            seconds=time.perf_counter() - start,
            path=path,
            cache_hits=getattr(provider, "cache_hits", 0) - hits0,
            cache_misses=getattr(provider, "cache_misses", 0) - misses0,
        )

    def _approx_matrix(
        self, window: WindowSpec, method: str | None
    ) -> CorrelationMatrix:
        if self._approx is None:
            raise DataError(
                "engine='approx' requires the client to hold an approx sketch"
            )
        from repro.approx.network import approximate_correlation_matrix

        selection = self._plan.align(window.resolve(self._plan))
        if not selection.is_aligned:
            raise SketchError(
                "the DFT-based method only supports query windows that are "
                "integral multiples of the basic window size (§2.2); use the "
                "exact TSUBASA engine for arbitrary windows"
            )
        values = approximate_correlation_matrix(
            self._approx,
            selection.full_windows,
            method=method if method is not None else "eq5",
        )
        return CorrelationMatrix(names=list(self._approx.names), values=values)

    def finish(
        self,
        spec: QuerySpec,
        matrix: CorrelationMatrix,
        baseline: CorrelationMatrix | None = None,
    ) -> Any:
        """Pure post-processing: turn matrices into the op's value.

        Cheap relative to matrix computation; the async service runs it
        inline on the event loop.
        """
        op = spec.op
        if op == "matrix":
            return matrix
        if op == "network":
            return ClimateNetwork.from_matrix(matrix, spec.theta, self._coordinates)
        if op == "top_k":
            return top_k_pairs(matrix, spec.k)
        if op == "anticorrelated":
            return most_anticorrelated_pairs(matrix, spec.k)
        if op == "neighbors":
            return neighbors(matrix, spec.node, spec.theta)
        if op == "pairs_in_range":
            return pairs_in_range(matrix, spec.low, spec.high)
        if op == "degree":
            return degree_at_threshold(matrix, spec.theta)
        if op == "diff_network":
            if baseline is None:
                raise DataError("diff_network post-processing needs a baseline")
            current = ClimateNetwork.from_matrix(
                matrix, spec.theta, self._coordinates
            )
            previous = ClimateNetwork.from_matrix(
                baseline, spec.theta, self._coordinates
            )
            old_edges = previous.edge_set()
            new_edges = current.edge_set()
            return new_edges - old_edges, old_edges - new_edges
        raise DataError(f"unknown query op {op!r}")

    def build_result(
        self,
        spec: QuerySpec,
        executions: list[MatrixExecution],
        coalesced: bool,
        started_at: float,
        matrix_seconds: float,
    ) -> QueryResult:
        """Post-process matrices and assemble the result envelope.

        Shared by :meth:`execute` and the async service so both surfaces
        return identically shaped results. ``started_at`` anchors the
        ``total`` timing — call entry for the sync client, submission time
        for the service (where queue wait is part of the request's latency).
        """
        post_start = time.perf_counter()
        value = self.finish(
            spec,
            executions[0].matrix,
            executions[1].matrix if len(executions) > 1 else None,
        )
        post_seconds = time.perf_counter() - post_start
        lead = executions[0]
        provenance = Provenance(
            backend=lead.backend,
            engine=spec.engine,
            execution=lead.execution,
            path=lead.path,
            n_workers=lead.n_workers,
            coalesced=coalesced,
            cache=any(e.from_cache for e in executions),
            cache_hits=sum(e.cache_hits for e in executions),
            cache_misses=sum(e.cache_misses for e in executions),
        )
        return QueryResult(
            spec=spec,
            value=value,
            timings={
                "total": time.perf_counter() - started_at,
                "matrix": matrix_seconds,
                "post": post_seconds,
            },
            provenance=provenance,
        )

    def execute(self, spec: QuerySpec) -> QueryResult:
        """Execute one spec end to end.

        Returns:
            A :class:`~repro.api.spec.QueryResult` whose value matches the
            classic engine methods bit-for-bit under the default serial
            policy.
        """
        return self._execute(spec, memo=None)

    def execute_many(self, specs: list[QuerySpec]) -> list[QueryResult]:
        """Execute several specs, sharing matrix computations between them.

        The synchronous analogue of the service layer's in-flight
        coalescing: specs over the same window (and engine) reuse one
        matrix. Results come back in spec order; reused computations are
        flagged ``coalesced`` in their provenance.
        """
        memo: dict[tuple, MatrixExecution] = {}
        return [self._execute(spec, memo=memo) for spec in specs]

    def _execute(
        self, spec: QuerySpec, memo: dict[tuple, MatrixExecution] | None
    ) -> QueryResult:
        if not isinstance(spec, QuerySpec):
            raise DataError(f"expected a QuerySpec, got {type(spec)!r}")
        if spec.op == "subscribe":
            raise ServiceError(
                "subscribe is a streaming operation with no single result; "
                "consume it over a push transport (the WebSocket server's "
                "/v1/ws endpoint or a repro.streams.hub.SnapshotHub)"
            )
        start = time.perf_counter()
        coalesced = False
        matrix_seconds = 0.0
        executions: list[MatrixExecution] = []
        for window in spec.windows:
            if memo is not None:
                key = self.matrix_key(spec, window)
                cached = memo.get(key)
                if cached is None:
                    cached = self.compute_matrix(spec, window)
                    matrix_seconds += cached.seconds
                    memo[key] = cached
                else:
                    coalesced = True
                executions.append(cached)
            else:
                execution = self.compute_matrix(spec, window)
                matrix_seconds += execution.seconds
                executions.append(execution)
        return self.build_result(
            spec,
            executions,
            coalesced=coalesced,
            started_at=start,
            matrix_seconds=matrix_seconds,
        )
