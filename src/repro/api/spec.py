"""Declarative query specifications and result envelopes.

Every request the TSUBASA reproduction can answer — correlation matrices and
networks over arbitrary windows, top-k / most-anticorrelated pairs, node
neighborhoods, correlation-band scans, degree profiles, and diff-networks
between two windows — is described by one frozen, validated, serializable
:class:`QuerySpec`. The spec is *what* is being asked; *how* it is answered
(which sketch backend, serial vs parallel execution, cache state) is decided
by :class:`~repro.api.client.TsubasaClient` and reported back in the
:class:`QueryResult` envelope's :class:`Provenance`.

A spec round-trips through plain dictionaries and JSON (``to_dict`` /
``from_dict``, ``to_json`` / ``from_json``), which is what the ``tsubasa
serve`` JSON-lines protocol and any future HTTP frontend speak.
"""

from __future__ import annotations

import json
import math
import numbers
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any

from repro.exceptions import DataError

if TYPE_CHECKING:
    from repro.core.segmentation import BasicWindowPlan, QueryWindow

__all__ = ["WindowSpec", "QuerySpec", "Provenance", "QueryResult", "OPS"]

#: Supported query operations. All but ``subscribe`` are request/response
#: ops answerable by any client; ``subscribe`` (op family: network_updates)
#: is a *streaming* op — it registers a standing network-update subscription
#: and is only meaningful on push-capable transports (the WebSocket server,
#: :class:`~repro.streams.hub.SnapshotHub`).
OPS = (
    "matrix",
    "network",
    "top_k",
    "anticorrelated",
    "neighbors",
    "pairs_in_range",
    "degree",
    "diff_network",
    "subscribe",
)

#: Supported execution engines.
ENGINES = ("exact", "approx")

#: Approximate combination methods (Algorithm 4 dispatch).
APPROX_METHODS = ("eq5", "average", "auto")


@dataclass(frozen=True)
class WindowSpec:
    """A declarative time-window selection, in one of three forms.

    * ``(end, length)`` — the paper's query window ``w = (e, l)``: the ``l``
      points ending at offset ``e`` inclusive.
    * ``(start, stop)`` — an arbitrary half-open ``[start, stop)`` span of
      raw points.
    * ``(first_window, n_windows)`` — an aligned range of basic windows,
      resolved against the backend's segmentation plan.

    Exactly one form must be given; the three are interchangeable where they
    describe the same points (and coalesce in the service layer when they
    do). All offsets are integer positions from the start of the sketched
    data.
    """

    end: int | None = None
    length: int | None = None
    start: int | None = None
    stop: int | None = None
    first_window: int | None = None
    n_windows: int | None = None

    def __post_init__(self) -> None:
        forms = {
            "end/length": (self.end, self.length),
            "start/stop": (self.start, self.stop),
            "first_window/n_windows": (self.first_window, self.n_windows),
        }
        given = [name for name, pair in forms.items()
                 if any(v is not None for v in pair)]
        if len(given) != 1:
            raise DataError(
                "window must use exactly one of end/length, start/stop, or "
                f"first_window/n_windows; got {given or 'nothing'}"
            )
        name = given[0]
        pair = forms[name]
        if any(v is None for v in pair):
            raise DataError(f"window form {name} needs both fields")
        for field_name in name.split("/"):
            value = getattr(self, field_name)
            # Accept any integral type (numpy ints included — window ends
            # routinely come out of array arithmetic) but normalize to a
            # plain int so specs hash/serialize uniformly.
            if not isinstance(value, numbers.Integral) or isinstance(value, bool):
                raise DataError(
                    f"window field values must be integers, got {value!r}"
                )
            object.__setattr__(self, field_name, int(value))
        if name == "start/stop":
            assert self.start is not None and self.stop is not None
            if not 0 <= self.start < self.stop:
                raise DataError(
                    f"window span [{self.start}, {self.stop}) is empty or "
                    f"negative"
                )

    def resolve(self, plan: "BasicWindowPlan") -> "QueryWindow":
        """The concrete :class:`QueryWindow` this spec selects under ``plan``.

        Raises :class:`~repro.exceptions.SegmentationError` when the window
        falls outside the sketched range.
        """
        from repro.core.segmentation import QueryWindow

        # __post_init__ guarantees the chosen form's fields come in pairs;
        # the asserts surface that invariant to type checkers.
        if self.end is not None:
            assert self.length is not None
            return QueryWindow(end=self.end, length=self.length)
        if self.start is not None:
            assert self.stop is not None
            return QueryWindow(end=self.stop - 1, length=self.stop - self.start)
        assert self.first_window is not None and self.n_windows is not None
        return plan.aligned_query(self.first_window, self.n_windows)

    def to_dict(self) -> dict[str, int]:
        """Plain-dict form holding only the fields of the chosen variant."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WindowSpec":
        """Parse a window from its dictionary form (strict: no unknown keys)."""
        if not isinstance(payload, dict):
            raise DataError(f"window must be an object, got {payload!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise DataError(f"unknown window fields: {sorted(unknown)}")
        return cls(**payload)


# Which optional QuerySpec fields each operation requires/accepts. Strictness
# is the point of a declarative surface: a spec carrying irrelevant knobs is
# more likely a caller bug than an intentional no-op.
_REQUIRED: dict[str, tuple[str, ...]] = {
    "matrix": (),
    "network": ("theta",),
    "top_k": ("k",),
    "anticorrelated": ("k",),
    "neighbors": ("node", "theta"),
    "pairs_in_range": ("low", "high"),
    "degree": ("theta",),
    "diff_network": ("baseline", "theta"),
    # A subscription's window is the standing query window the realtime
    # engine maintains; theta is the subscription's network threshold.
    "subscribe": ("theta",),
}

# Optional fields an operation additionally *accepts* (beyond the required
# set and the universal deadline_ms).
_OPTIONAL: dict[str, tuple[str, ...]] = {
    "subscribe": ("resume_from",),
}


@dataclass(frozen=True)
class QuerySpec:
    """A complete, validated description of one query.

    Attributes:
        op: The operation, one of :data:`OPS`.
        window: The time window the query is over. For ``subscribe`` it
            describes the *standing* query window (only its length is
            meaningful; the window slides with the stream).
        theta: Correlation threshold (``network``, ``neighbors``, ``degree``,
            ``diff_network``, ``subscribe``).
        k: Result count (``top_k``, ``anticorrelated``).
        node: Anchor series name (``neighbors``).
        low: Lower correlation bound, inclusive (``pairs_in_range``).
        high: Upper correlation bound, inclusive (``pairs_in_range``).
        baseline: The *previous* window of a ``diff_network`` query; edges
            are reported as appearing/disappearing going ``baseline`` →
            ``window``.
        engine: ``"exact"`` (Lemma 1, the default) or ``"approx"`` (the
            DFT-based competitor; aligned windows only).
        method: Approximate combination method (``engine="approx"`` only):
            ``"eq5"``, ``"average"``, or ``"auto"``.
        deadline_ms: Remaining time budget in milliseconds (any op). A
            *relative* budget, not a wall-clock timestamp, so it is immune
            to client/server clock skew; the receiving service anchors it
            to its own monotonic clock and sheds the request with
            :class:`~repro.exceptions.DeadlineExceeded` once spent.
            Excluded from coalescing/cache identity — it describes the
            caller's patience, not the answer.
        resume_from: Last stream sequence number already seen
            (``subscribe`` only). The hub replays newer snapshots from its
            bounded ring, or opens the stream with an explicit ``gap``
            event when they have aged out.
    """

    op: str
    window: WindowSpec
    theta: float | None = None
    k: int | None = None
    node: str | None = None
    low: float | None = None
    high: float | None = None
    baseline: WindowSpec | None = None
    engine: str = "exact"
    method: str | None = None
    deadline_ms: int | None = None
    resume_from: int | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise DataError(f"unknown query op {self.op!r}; expected one of {OPS}")
        if not isinstance(self.window, WindowSpec):
            raise DataError(f"window must be a WindowSpec, got {self.window!r}")
        if self.engine not in ENGINES:
            raise DataError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.method is not None:
            if self.engine != "approx":
                raise DataError("method is only meaningful with engine='approx'")
            if self.method not in APPROX_METHODS:
                raise DataError(
                    f"unknown approx method {self.method!r}; expected one of "
                    f"{APPROX_METHODS}"
                )
        required = _REQUIRED[self.op]
        for name in required:
            if getattr(self, name) is None:
                raise DataError(f"op {self.op!r} requires {name}")
        accepted = required + _OPTIONAL.get(self.op, ())
        for name in (
            "theta", "k", "node", "low", "high", "baseline", "resume_from"
        ):
            if getattr(self, name) is not None and name not in accepted:
                raise DataError(f"op {self.op!r} does not accept {name}")
        if self.theta is not None:
            if not isinstance(self.theta, numbers.Real) or isinstance(
                self.theta, bool
            ):
                raise DataError(f"theta must be a number, got {self.theta!r}")
            object.__setattr__(self, "theta", float(self.theta))
            # Out-of-[-1, 1] thresholds are legal (they yield empty or
            # complete networks — threshold sweeps rely on that, and the
            # classic engine paths accepted them); only non-finite values
            # are nonsense.
            if not math.isfinite(self.theta):
                raise DataError(f"theta must be finite, got {self.theta}")
        if self.k is not None:
            if (
                not isinstance(self.k, numbers.Integral)
                or isinstance(self.k, bool)
                or self.k <= 0
            ):
                raise DataError(f"k must be a positive integer, got {self.k!r}")
            object.__setattr__(self, "k", int(self.k))
        if self.node is not None and not isinstance(self.node, str):
            raise DataError(f"node must be a series name, got {self.node!r}")
        if self.low is not None:
            for name in ("low", "high"):
                value = getattr(self, name)
                if not isinstance(value, numbers.Real) or isinstance(value, bool):
                    raise DataError(f"{name} must be a number, got {value!r}")
                object.__setattr__(self, name, float(value))
            assert self.high is not None  # op validation pairs low/high
            if self.low > self.high:
                raise DataError(f"empty range [{self.low}, {self.high}]")
        if self.baseline is not None and not isinstance(self.baseline, WindowSpec):
            raise DataError(
                f"baseline must be a WindowSpec, got {self.baseline!r}"
            )
        if self.deadline_ms is not None:
            if (
                not isinstance(self.deadline_ms, numbers.Integral)
                or isinstance(self.deadline_ms, bool)
                or self.deadline_ms <= 0
            ):
                raise DataError(
                    "deadline_ms must be a positive integer of milliseconds, "
                    f"got {self.deadline_ms!r}"
                )
            object.__setattr__(self, "deadline_ms", int(self.deadline_ms))
        if self.resume_from is not None:
            if (
                not isinstance(self.resume_from, numbers.Integral)
                or isinstance(self.resume_from, bool)
                or self.resume_from < 0
            ):
                raise DataError(
                    "resume_from must be a sequence number >= 0, got "
                    f"{self.resume_from!r}"
                )
            object.__setattr__(self, "resume_from", int(self.resume_from))

    @property
    def windows(self) -> tuple[WindowSpec, ...]:
        """Every window this spec needs a correlation matrix over."""
        if self.baseline is not None:
            return (self.window, self.baseline)
        return (self.window,)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-compatible, ``None`` fields omitted)."""
        payload: dict[str, Any] = {"op": self.op, "window": self.window.to_dict()}
        for name in ("theta", "k", "node", "low", "high", "deadline_ms",
                     "resume_from"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.baseline is not None:
            payload["baseline"] = self.baseline.to_dict()
        if self.engine != "exact":
            payload["engine"] = self.engine
        if self.method is not None:
            payload["method"] = self.method
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "QuerySpec":
        """Parse and validate a spec from its dictionary form (strict)."""
        if not isinstance(payload, dict):
            raise DataError(f"query spec must be an object, got {payload!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise DataError(f"unknown query spec fields: {sorted(unknown)}")
        if "op" not in payload or "window" not in payload:
            raise DataError("query spec requires 'op' and 'window'")
        kwargs = dict(payload)
        kwargs["window"] = WindowSpec.from_dict(kwargs["window"])
        if kwargs.get("baseline") is not None:
            kwargs["baseline"] = WindowSpec.from_dict(kwargs["baseline"])
        return cls(**kwargs)

    def to_json(self) -> str:
        """One-line JSON form (the ``tsubasa serve`` wire format)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        """Parse a spec from JSON, validating strictly."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise DataError(f"invalid query spec JSON: {exc}") from exc
        return cls.from_dict(payload)


@dataclass(frozen=True)
class Provenance:
    """How a query was actually answered.

    Attributes:
        backend: Sketch backend identifier (``"memory"``, ``"store"``,
            ``"mmap"``, ``"chunked"``, ...).
        engine: ``"exact"`` or ``"approx"``.
        execution: ``"serial"`` or ``"parallel"``.
        path: Combination strategy: ``"prefix"`` when the matrix came from
            prefix-aggregate tables (:mod:`repro.core.prefix`, O(n^2) per
            query), ``"direct"`` for the streaming Lemma 1 reduction over
            the selected windows.
        n_workers: Worker processes used (1 for serial execution).
        coalesced: Whether this request shared an in-flight matrix
            computation instead of running its own (service layer).
        cache: Whether the matrix was served from the service's bounded
            result cache instead of being computed at all.
        cache_hits: Provider cache hits observed during this query (0 for
            backends without a cache; approximate under concurrent sharing).
        cache_misses: Provider cache misses observed during this query.
    """

    backend: str
    engine: str = "exact"
    execution: str = "serial"
    path: str = "direct"
    n_workers: int = 1
    coalesced: bool = False
    cache: bool = False
    cache_hits: int = 0
    cache_misses: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the JSON-lines protocol."""
        return {
            "backend": self.backend,
            "engine": self.engine,
            "execution": self.execution,
            "path": self.path,
            "n_workers": self.n_workers,
            "coalesced": self.coalesced,
            "cache": self.cache,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@dataclass(frozen=True)
class QueryResult:
    """Envelope around a query's answer.

    Attributes:
        spec: The spec that was executed.
        value: The operation's natural Python value — a
            :class:`~repro.core.matrix.CorrelationMatrix` (``matrix``), a
            :class:`~repro.core.network.ClimateNetwork` (``network``), pair
            lists, a degree dict, or an ``(appeared, disappeared)`` edge-set
            tuple (``diff_network``).
        timings: Wall-clock breakdown in seconds: ``total``, ``matrix``
            (correlation computation, including any coalesced wait), and
            ``post`` (operator post-processing).
        provenance: How the answer was produced.
    """

    spec: QuerySpec
    value: Any
    timings: dict[str, float] = field(default_factory=dict)
    provenance: Provenance | None = None

    def payload(self) -> dict[str, Any]:
        """JSON-compatible form of :attr:`value` for the wire protocols."""
        op = self.spec.op
        value = self.value
        if op == "matrix":
            return {"names": list(value.names), "values": value.values.tolist()}
        if op == "network":
            edges = sorted(value.edge_set())
            return {
                "names": list(value.names),
                "n_nodes": value.n_nodes,
                "n_edges": value.n_edges,
                "theta": value.threshold,
                "edges": [
                    [a, b, value.edge_weight(a, b)] for a, b in edges
                ],
            }
        if op in ("top_k", "anticorrelated", "pairs_in_range"):
            return {"pairs": [[a, b, corr] for a, b, corr in value]}
        if op == "neighbors":
            return {"neighbors": [[name, corr] for name, corr in value]}
        if op == "degree":
            return {"degree": dict(value)}
        if op == "diff_network":
            appeared, disappeared = value
            return {
                "appeared": [list(edge) for edge in sorted(appeared)],
                "disappeared": [list(edge) for edge in sorted(disappeared)],
            }
        raise DataError(f"no payload form for op {op!r}")
