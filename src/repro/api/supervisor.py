"""SO_REUSEPORT multi-process acceptors: N event loops on one port.

A single asyncio process tops out at one core's worth of JSON/socket work.
:class:`AcceptorSupervisor` runs ``tsubasa serve --http --workers N`` as N
independent acceptor *processes* that each bind the same ``host:port`` with
``SO_REUSEPORT`` — the kernel load-balances incoming connections across the
listening sockets by 4-tuple hash, so no userspace proxy or fd-passing is
needed. Each worker owns a full stack: its own event loop,
:class:`~repro.api.service.TsubasaService`, and
:class:`~repro.api.server.TsubasaServer` over a *read-only shared* sketch
store (the mmap backend maps the same files in every process; its
generation counter already makes concurrent readers safe).

The parent process never serves traffic. It:

* resolves the port up front (binding a placeholder ``SO_REUSEPORT`` socket,
  so ``--http host:0`` works and the port stays reserved between restarts),
* spawns workers with the ``spawn`` start method (an asyncio parent must
  never ``fork``),
* restarts workers that die unexpectedly, and
* propagates SIGTERM: every worker drains in-flight requests
  (:meth:`TsubasaServer.aclose`) before the supervisor returns.

Because workers are separate processes, per-worker state — the service's
result cache, the server's in-flight budget (``max_inflight_total``), and
``/v1/stats`` counters — is per worker. ``/v1/stats`` and ``/healthz``
report the serving worker's ``pid``, which is how tests (and operators)
observe the spread.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import DataError, ServiceError

__all__ = ["WorkerConfig", "AcceptorSupervisor"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to rebuild the serving stack.

    The config crosses a process boundary via pickling (``spawn`` start
    method), so it carries paths and plain values, never live objects.

    Attributes:
        store: Path to the sketch store (mmap directory or SQLite file).
        backend: Provider backend — ``"mmap"``, ``"store"``, or
            ``"memory"``.
        cache_windows: ``StoreProvider`` window cache size.
        data: Optional raw dataset (``.npz``) for data-plane ops.
        prefix: Wrap the provider in prefix-aggregate tables.
        host: Bind host.
        service_kwargs: Extra :class:`~repro.api.service.TsubasaService`
            arguments (``max_workers``, ``result_cache``, ...).
        server_kwargs: Extra :class:`~repro.api.server.TsubasaServer`
            arguments (``max_inflight``, ``auth_token``, ...). Callables
            (e.g. an auth hook) must be picklable.
    """

    store: str
    backend: str = "mmap"
    cache_windows: int = 64
    data: str | None = None
    prefix: bool = False
    host: str = "127.0.0.1"
    service_kwargs: dict[str, Any] = field(default_factory=dict)
    server_kwargs: dict[str, Any] = field(default_factory=dict)


def _worker_main(config: WorkerConfig, port: int, ready) -> None:
    """One acceptor process: build the stack, serve until SIGTERM."""
    import asyncio
    import sys
    from types import SimpleNamespace

    from repro import cli
    from repro.api.server import TsubasaServer
    from repro.api.service import TsubasaService

    ns = SimpleNamespace(
        command="serve",
        store=config.store,
        backend=config.backend,
        cache_windows=config.cache_windows,
        data=config.data,
        prefix=config.prefix,
        parallel=0,
    )

    async def run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        with cli._open_store(config.store) as store:
            client = cli._open_client(store, ns)
            service = TsubasaService(client, **config.service_kwargs)
            server = TsubasaServer(service, **config.server_kwargs)
            await server.start(host=config.host, port=port, reuse_port=True)
            ready.set()
            await stop.wait()
            await server.aclose()
            served = (
                server.stats["http_requests"] + server.stats["ws_requests"]
            )
            print(
                f"worker {os.getpid()}: drained after {served} requests",
                file=sys.stderr,
                flush=True,
            )

    asyncio.run(run())


class AcceptorSupervisor:
    """Spawn, monitor, restart, and drain ``SO_REUSEPORT`` acceptors.

    Usage (programmatic; the CLI wraps this for ``serve --http --workers``)::

        supervisor = AcceptorSupervisor(config, workers=4, port=8787)
        supervisor.start()           # blocks until every worker accepts
        ...                          # serve traffic
        supervisor.stop()            # SIGTERM + drain every worker

    Args:
        config: The per-worker serving stack description.
        workers: Number of acceptor processes (>= 1).
        port: Listening port; 0 picks an ephemeral port, resolved before
            the first worker starts (read it from :attr:`port`).
        restart_backoff: Seconds to wait before replacing a dead worker.
            Doubles per rapid successive death (see ``crash_loop_window``)
            up to ``max_restart_backoff``; a lone crash waits exactly this
            long.
        start_timeout: Seconds to wait for every worker to start accepting.
        max_restart_backoff: Upper bound on the per-death restart delay.
        crash_loop_limit: Give up after this many worker deaths within
            ``crash_loop_window`` seconds: :attr:`failed` is set,
            :attr:`failure_reason` explains, and no further replacements
            are spawned — a worker that dies instantly on every start
            (corrupt store, bad config) must surface as a supervisor
            failure, not an infinite respawn loop. ``0`` disables the
            guard.
        crash_loop_window: Sliding window (seconds) for the crash-loop
            death count.
    """

    _MONITOR_INTERVAL = 0.2

    def __init__(
        self,
        config: WorkerConfig,
        workers: int = 2,
        port: int = 0,
        restart_backoff: float = 0.5,
        start_timeout: float = 60.0,
        max_restart_backoff: float = 30.0,
        crash_loop_limit: int = 5,
        crash_loop_window: float = 30.0,
    ) -> None:
        if not isinstance(config, WorkerConfig):
            raise DataError(f"expected a WorkerConfig, got {type(config)!r}")
        if workers < 1:
            raise DataError("workers must be >= 1")
        if max_restart_backoff < restart_backoff:
            raise DataError(
                "max_restart_backoff must be >= restart_backoff"
            )
        if crash_loop_limit < 0 or crash_loop_window <= 0:
            raise DataError(
                "crash_loop_limit must be >= 0 and crash_loop_window > 0"
            )
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ServiceError(
                "SO_REUSEPORT is not available on this platform; run a "
                "single-process server instead"
            )
        self.config = config
        self.workers = workers
        self.restart_backoff = restart_backoff
        self.start_timeout = start_timeout
        self.max_restart_backoff = max_restart_backoff
        self.crash_loop_limit = crash_loop_limit
        self.crash_loop_window = crash_loop_window
        self.restarts = 0
        #: Set when the crash-loop guard trips; the supervisor stops
        #: replacing workers and the caller should stop() and exit nonzero.
        self.failed = threading.Event()
        self.failure_reason: str | None = None
        self._deaths: deque[float] = deque()
        self._requested_port = port
        self._port: int | None = None
        self._placeholder: socket.socket | None = None
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The resolved listening port (after :meth:`start`)."""
        if self._port is None:
            raise ServiceError("supervisor is not started")
        return self._port

    @property
    def host(self) -> str:
        """The bind host."""
        return self.config.host

    @property
    def address(self) -> str:
        """``host:port`` of the shared listening address."""
        return f"{self.host}:{self.port}"

    def pids(self) -> list[int]:
        """PIDs of the currently-running workers."""
        with self._lock:
            return [p.pid for p in self._procs if p.pid and p.is_alive()]

    def n_alive(self) -> int:
        """How many workers are currently running."""
        return len(self.pids())

    def _resolve_port(self) -> None:
        """Reserve the port with a placeholder ``SO_REUSEPORT`` socket.

        The placeholder never listens, so it receives no connections; it
        pins the port so ``port=0`` resolves once and worker restarts can
        always rebind it.
        """
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            placeholder.bind((self.config.host, self._requested_port))
        except OSError:
            placeholder.close()
            raise
        self._placeholder = placeholder
        self._port = int(placeholder.getsockname()[1])

    def _spawn_worker(self) -> tuple[Any, Any]:
        ready = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.config, self._port, ready),
            daemon=True,
        )
        proc.start()
        return proc, ready

    def start(self) -> "AcceptorSupervisor":
        """Spawn every worker and wait until all are accepting."""
        if self._port is not None:
            return self
        self._resolve_port()
        pending: list[tuple[Any, Any]] = []
        for _ in range(self.workers):
            pending.append(self._spawn_worker())
        with self._lock:
            self._procs = [proc for proc, _ready in pending]
        deadline = time.monotonic() + self.start_timeout
        for proc, ready in pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not ready.wait(timeout=remaining):
                self.stop(timeout=5.0)
                raise ServiceError(
                    f"worker {proc.pid} did not start accepting within "
                    f"{self.start_timeout:.0f}s"
                )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="tsubasa-supervisor", daemon=True
        )
        self._monitor.start()
        return self

    def _record_death(self) -> float | None:
        """Count one worker death; the backoff before its replacement.

        ``None`` means the crash-loop guard tripped: ``crash_loop_limit``
        deaths landed within ``crash_loop_window`` seconds, so replacing
        the worker would almost certainly just burn another spawn.
        """
        now = time.monotonic()
        self._deaths.append(now)
        while self._deaths and now - self._deaths[0] > self.crash_loop_window:
            self._deaths.popleft()
        if self.crash_loop_limit and len(self._deaths) >= self.crash_loop_limit:
            self.failure_reason = (
                f"crash loop: {len(self._deaths)} worker deaths within "
                f"{self.crash_loop_window:.0f}s "
                f"(limit {self.crash_loop_limit}); gave up restarting — "
                "check worker stderr for the underlying startup failure"
            )
            self.failed.set()
            return None
        # A lone crash waits restart_backoff; rapid successive deaths
        # back off exponentially so a flapping worker can't spin the CPU.
        return min(
            self.restart_backoff * 2.0 ** (len(self._deaths) - 1),
            self.max_restart_backoff,
        )

    def _monitor_loop(self) -> None:
        """Replace workers that die unexpectedly (crash, OOM kill, ...)."""
        while not self._stopping.wait(self._MONITOR_INTERVAL):
            with self._lock:
                procs = list(self._procs)
            for index, proc in enumerate(procs):
                if proc.is_alive() or self._stopping.is_set():
                    continue
                proc.join(timeout=0)
                backoff = self._record_death()
                if backoff is None:
                    return  # crash loop: stop replacing workers
                time.sleep(backoff)
                if self._stopping.is_set():
                    return
                replacement, ready = self._spawn_worker()
                with self._lock:
                    # The slot may have been mutated by stop(); guard.
                    if index < len(self._procs) and self._procs[index] is proc:
                        self._procs[index] = replacement
                        self.restarts += 1
                    else:
                        replacement.terminate()
                # Wait for the replacement to come up, but bail early if
                # it dies before signalling ready (a stillborn worker —
                # e.g. its store vanished): the next monitor pass counts
                # that death instead of blocking a full start_timeout.
                deadline = time.monotonic() + self.start_timeout
                while time.monotonic() < deadline:
                    if ready.wait(timeout=self._MONITOR_INTERVAL):
                        break
                    if not replacement.is_alive():
                        break

    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM every worker, wait for drains, reap stragglers."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            procs = list(self._procs)
            self._procs = []
        for proc in procs:
            if proc.is_alive() and proc.pid:
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    def __enter__(self) -> "AcceptorSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
