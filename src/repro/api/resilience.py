"""Client-side resilience primitives: retry policies and circuit breakers.

The remote path can fail in ways in-process execution cannot — a worker
SIGKILLed mid-request, a stale keep-alive, an overloaded server shedding
with 503, a network reset. Every TSUBASA query except ``subscribe`` is an
idempotent pure read, so re-issuing one is always safe; this module holds
the policy pieces :class:`~repro.api.remote.TsubasaRemoteClient` composes
to do that without melting a struggling server:

- :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *full jitter* (each delay is uniform in ``[0, cap]``, the AWS
  architecture-blog recipe that decorrelates retry storms).
- :class:`RetryBudget` — a token bucket refilled by successes, capping
  the *ratio* of retries to useful work so a hard outage degrades into a
  trickle of probes instead of an amplification loop.
- :class:`CircuitBreaker` — closed → open → half-open per endpoint, so a
  dead server fails fast (:class:`~repro.exceptions.CircuitOpenError`)
  instead of eating a full connect timeout on every call.
- :func:`is_retryable` — the single classification point for "safe to
  re-issue": connection-level failures and errors explicitly marked
  retryable by the server (503 shed). Application errors — bad specs,
  auth rejections, expired deadlines — are never retried.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import DataError, TsubasaError

__all__ = [
    "RetryPolicy",
    "RetryBudget",
    "CircuitBreaker",
    "is_retryable",
    "mark_retryable",
]


#: Exception classes that indicate the *transport* failed, not the query:
#: refused/reset/closed connections, DNS trouble, socket timeouts. (OSError
#: covers ConnectionError and socket.timeout; http.client errors are raised
#: as ServiceError by the client with ``retryable`` set where appropriate.)
_CONNECT_ERRORS: tuple[type[BaseException], ...] = (OSError, TimeoutError)


def mark_retryable(exc: BaseException) -> BaseException:
    """Tag an exception as safe to re-issue and return it.

    The tag travels as a plain ``retryable`` attribute so it survives the
    wire round trip: the server sets it on 503-shed error envelopes and
    :meth:`~repro.api.protocol.ErrorEnvelope.to_exception` restores it.
    """
    exc.retryable = True  # type: ignore[attr-defined]
    return exc


def is_retryable(exc: BaseException) -> bool:
    """Whether re-issuing the failed call is safe *and* plausibly useful.

    True for connection-level failures (the request may never have
    reached a healthy server) and for errors the server explicitly
    marked retryable (overload shedding). False for everything else —
    malformed specs, auth failures, and expired deadlines will fail the
    same way again, so retrying only adds load.
    """
    if getattr(exc, "retryable", False):
        return True
    if isinstance(exc, TsubasaError):
        # Library errors are application-level unless explicitly marked.
        return False
    return isinstance(exc, _CONNECT_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how hard) to retry idempotent remote calls.

    The defaults suit interactive queries against a LAN server: up to 3
    retries, first delay ~50 ms, doubling to a 2 s cap, full jitter.

    Args:
        max_attempts: Total tries including the first (≥ 1; 1 disables
            retries while keeping budget/breaker bookkeeping).
        base_backoff: Backoff cap before the first retry, seconds.
        max_backoff: Upper bound on the backoff cap, seconds.
        multiplier: Cap growth factor per attempt.
        jitter: Draw each delay uniformly from ``[0, cap]`` (full
            jitter). ``False`` sleeps the cap exactly — deterministic,
            for tests.
        budget: Token-bucket size shared by all calls on one client; each
            retry spends a token (see :class:`RetryBudget`). ``0``
            disables the budget (unbounded retries up to max_attempts).
        budget_refill: Fraction of a token returned per *successful*
            call, tying retry capacity to useful throughput.
    """

    max_attempts: int = 4
    base_backoff: float = 0.05
    max_backoff: float = 2.0
    multiplier: float = 2.0
    jitter: bool = True
    budget: float = 16.0
    budget_refill: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise DataError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise DataError("backoff bounds must be >= 0")
        if self.multiplier < 1.0:
            raise DataError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.budget < 0 or self.budget_refill < 0:
            raise DataError("retry budget values must be >= 0")

    def backoff(self, retry_index: int, rng: random.Random | None = None) -> float:
        """Delay in seconds before retry number ``retry_index`` (0-based)."""
        cap = min(
            self.max_backoff, self.base_backoff * self.multiplier**retry_index
        )
        if not self.jitter:
            return cap
        return (rng or random).uniform(0.0, cap)


class RetryBudget:
    """Token bucket bounding retries relative to successful calls.

    Starts full at ``policy.budget`` tokens. Each retry spends one;
    each success refunds ``policy.budget_refill`` (clamped at the cap).
    When empty, :meth:`spend` refuses and the caller surfaces the
    original error instead of piling on. Thread-safe: one client may be
    shared across threads.
    """

    def __init__(self, policy: RetryPolicy) -> None:
        self._policy = policy
        self._tokens = policy.budget
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        return self._tokens

    def spend(self) -> bool:
        """Take one token; False (refusing the retry) when exhausted."""
        if self._policy.budget == 0:
            return True  # budget disabled
        with self._lock:
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True

    def refund(self) -> None:
        """Credit a successful call back to the bucket."""
        if self._policy.budget == 0:
            return
        with self._lock:
            self._tokens = min(
                self._policy.budget, self._tokens + self._policy.budget_refill
            )


class CircuitBreaker:
    """Per-endpoint closed → open → half-open breaker.

    *Closed* (healthy): calls flow, consecutive transport failures are
    counted. At ``failure_threshold`` the breaker *opens*: calls fail
    fast for ``reset_timeout`` seconds without touching the socket.
    Then one probe call is let through (*half-open*); success closes the
    breaker, failure re-opens it for another full timeout.

    Thread-safe. The clock is injectable for deterministic tests.

    Args:
        failure_threshold: Consecutive retryable failures that open the
            breaker.
        reset_timeout: Seconds the breaker stays open before allowing a
            half-open probe.
        clock: Monotonic time source (tests inject a fake).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise DataError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise DataError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self.fast_failures = 0  # calls refused while open (observability)

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (may promote)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half_open"

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In half-open state only the first caller gets the probe; others
        keep failing fast until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half_open":
                # Claim the single probe slot by re-opening pessimistically;
                # record_success() flips to closed if the probe lands.
                self._state = "open"
                self._opened_at = self._clock()
                return True
            self.fast_failures += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()
