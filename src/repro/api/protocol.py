"""The versioned TSUBASA wire protocol (protocol version 1).

Every network transport — the HTTP/WebSocket server (:mod:`repro.api.server`),
the remote client (:mod:`repro.api.remote`), and the ``tsubasa serve``
JSON-lines mode — speaks the same four framed envelopes defined here:

* :class:`Request` — one :class:`~repro.api.spec.QuerySpec` plus a
  caller-chosen ``id``. Responses carry the id back, so a client may pipeline
  many requests on one connection and match completions **out of order**.
* :class:`Response` — a successful result: the op's JSON payload, wall-clock
  seconds, and the :class:`~repro.api.spec.Provenance` dict.
* :class:`ErrorEnvelope` — a failed request: exception type name, message,
  and the library's stable failure code
  (:func:`repro.exceptions.error_code_for` — the same taxonomy the CLI uses
  for process exit codes).
* :class:`StreamEvent` — one pushed network-update snapshot of a
  ``subscribe`` op: a per-subscription sequence number plus the snapshot
  payload (timestamp, edges, appeared/disappeared deltas).

All frames are JSON objects carrying ``"protocol": 1``. Omitting the field
on a request means "current version"; any other value is rejected up front
(:func:`parse_request`), which is what lets a future version 2 coexist with
1 on one endpoint. Unknown envelope fields are rejected — strictness is the
point of a formalized surface (a frame carrying stray keys is more likely a
confused client than an intentional no-op).

For backward compatibility with the pre-protocol ``tsubasa serve`` wire
format, :func:`parse_request` also accepts the *inline* form, where the
spec's fields sit at the frame's top level next to ``id`` — it is
normalized into the same :class:`Request`.

:func:`value_from_payload` is the client-side inverse of
:meth:`~repro.api.spec.QueryResult.payload`: it rebuilds the op's natural
Python value (a :class:`~repro.core.matrix.CorrelationMatrix`, a
:class:`~repro.core.network.ClimateNetwork`, pair lists, ...) from the wire
payload, so a remote client returns the same value types an in-process
:class:`~repro.api.client.TsubasaClient` does.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import exceptions
from repro.api.spec import QueryResult, QuerySpec
from repro.exceptions import DataError, TsubasaError, error_code_for

if TYPE_CHECKING:
    from repro.streams.ingestion import NetworkSnapshot

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_V2",
    "SUPPORTED_PROTOCOLS",
    "Request",
    "Response",
    "ErrorEnvelope",
    "StreamEvent",
    "parse_request",
    "parse_frame",
    "value_from_payload",
]

#: The default protocol version (JSON envelopes, always available).
PROTOCOL_VERSION = 1

#: The binary columnar protocol (JSON sidecar + raw float64 buffers); see
#: :mod:`repro.api.frames`. Negotiated per connection, never the default.
PROTOCOL_V2 = 2

#: Every version this library can speak.
SUPPORTED_PROTOCOLS = (PROTOCOL_VERSION, PROTOCOL_V2)


def _check_id(request_id: Any) -> Any:
    """Validate a frame id: a JSON string or integer (or absent)."""
    if request_id is None or isinstance(request_id, str):
        return request_id
    if isinstance(request_id, numbers.Integral) and not isinstance(
        request_id, bool
    ):
        return int(request_id)
    raise DataError(
        f"frame id must be a string or integer, got {request_id!r}"
    )


def _check_version(payload: dict[str, Any]) -> int:
    """Validate (negotiate) the frame's protocol version field."""
    version = payload.get("protocol", PROTOCOL_VERSION)
    if (
        not isinstance(version, numbers.Integral)
        or isinstance(version, bool)
        or int(version) not in SUPPORTED_PROTOCOLS
    ):
        raise DataError(
            f"unsupported protocol version {version!r}; this endpoint "
            f"speaks protocols {', '.join(str(v) for v in SUPPORTED_PROTOCOLS)}"
        )
    return int(version)


@dataclass(frozen=True)
class Request:
    """One framed query request.

    Attributes:
        spec: The validated query spec.
        id: Caller-chosen correlation id echoed back on every frame this
            request produces (a string or integer; ``None`` lets the
            transport assign one).
    """

    spec: QuerySpec
    id: str | int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.spec, QuerySpec):
            raise DataError(f"expected a QuerySpec, got {self.spec!r}")
        object.__setattr__(self, "id", _check_id(self.id))

    def to_dict(self) -> dict[str, Any]:
        """Framed plain-dict form (``None`` id omitted)."""
        payload: dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "spec": self.spec.to_dict(),
        }
        if self.id is not None:
            payload["id"] = self.id
        return payload

    def to_json(self) -> str:
        """One-line JSON form."""
        return json.dumps(self.to_dict(), sort_keys=True)


def parse_request(payload: Any) -> Request:
    """Parse and strictly validate a request frame.

    Accepts the framed form (``{"protocol": 1, "id": ..., "spec": {...}}``)
    and, for backward compatibility with the pre-protocol JSON-lines serve
    format, the inline form where the spec's fields sit at the top level
    next to an optional ``id``. Raises
    :class:`~repro.exceptions.DataError` on malformed frames and on
    protocol-version mismatches.
    """
    if not isinstance(payload, dict):
        raise DataError(f"request frame must be a JSON object, got {payload!r}")
    _check_version(payload)
    request_id = _check_id(payload.get("id"))
    if "spec" in payload:
        unknown = set(payload) - {"protocol", "id", "spec"}
        if unknown:
            raise DataError(f"unknown request frame fields: {sorted(unknown)}")
        spec = QuerySpec.from_dict(payload["spec"])
    else:
        inline = {
            key: value
            for key, value in payload.items()
            if key not in ("protocol", "id")
        }
        spec = QuerySpec.from_dict(inline)
    return Request(spec=spec, id=request_id)


@dataclass(frozen=True)
class Response:
    """A successful completion frame.

    Attributes:
        result: The op's JSON payload
            (:meth:`~repro.api.spec.QueryResult.payload`).
        id: The originating request's id.
        seconds: Server-side wall-clock total for the request.
        provenance: The :class:`~repro.api.spec.Provenance` dict, when the
            transport carries one.
    """

    result: dict[str, Any]
    id: str | int | None = None
    seconds: float = 0.0
    provenance: dict[str, Any] | None = None

    @classmethod
    def from_result(
        cls, result: QueryResult, request_id: str | int | None = None
    ) -> "Response":
        """Wrap a finished :class:`~repro.api.spec.QueryResult`."""
        return cls(
            result=result.payload(),
            id=request_id,
            seconds=result.timings.get("total", 0.0),
            provenance=(
                result.provenance.to_dict()
                if result.provenance is not None
                else None
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "id": self.id,
            "ok": True,
            "result": self.result,
            "seconds": self.seconds,
        }
        if self.provenance is not None:
            payload["provenance"] = self.provenance
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict())


@dataclass(frozen=True)
class ErrorEnvelope:
    """A failed completion frame.

    Attributes:
        type: Exception class name (``"SketchError"``, ``"DataError"``, ...).
        message: Human-readable failure description.
        code: The library's stable failure code for
            :class:`~repro.exceptions.TsubasaError` subclasses (the same
            numbers the CLI uses as process exit codes); ``None`` for
            non-library failures.
        id: The originating request's id (``None`` when the failure happened
            before an id could be parsed).
        retryable: The server's assertion that re-issuing the identical
            request is safe and may succeed (overload shedding, graceful
            drain). Restored onto the rebuilt exception so
            :func:`~repro.api.resilience.is_retryable` classifies wire
            errors exactly like local ones.
    """

    type: str
    message: str
    code: int | None = None
    id: str | int | None = None
    retryable: bool = False

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        request_id: str | int | None = None,
        retryable: bool = False,
    ) -> "ErrorEnvelope":
        """The envelope for one failed request."""
        code = error_code_for(exc) if isinstance(exc, TsubasaError) else None
        return cls(
            type=type(exc).__name__,
            message=str(exc),
            code=code,
            id=request_id,
            retryable=retryable or bool(getattr(exc, "retryable", False)),
        )

    def to_exception(self) -> Exception:
        """Rebuild the failure as a raisable exception (client side).

        Library failures come back as the same
        :class:`~repro.exceptions.TsubasaError` subclass the server raised,
        so a remote client's error surface matches the in-process client's.
        Anything else degrades to a :class:`~repro.exceptions.TsubasaError`
        tagged with the original type name.
        """
        klass = getattr(exceptions, self.type, None)
        if (
            isinstance(klass, type)
            and issubclass(klass, TsubasaError)
        ):
            exc: Exception = klass(self.message)
        else:
            exc = TsubasaError(f"{self.type}: {self.message}")
        if self.retryable:
            exc.retryable = True  # type: ignore[attr-defined]
        return exc

    def to_dict(self) -> dict[str, Any]:
        error: dict[str, Any] = {"type": self.type, "message": self.message}
        if self.code is not None:
            error["code"] = self.code
        if self.retryable:
            error["retryable"] = True
        return {
            "protocol": PROTOCOL_VERSION,
            "id": self.id,
            "ok": False,
            "error": error,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())


@dataclass(frozen=True)
class StreamEvent:
    """One pushed snapshot of a ``subscribe`` op.

    Attributes:
        id: The subscription's request id.
        seq: The hub's global monotonic publish sequence number for this
            snapshot (:class:`~repro.streams.hub.SnapshotHub`). Strictly
            increasing and contiguous within one hub lifetime, shared by
            every subscriber — which is what makes it a resume token: a
            client that saw seq ``s`` reconnects with ``resume_from=s``
            and the hub replays ``s+1, s+2, ...`` from its ring.
        event: Snapshot payload: ``timestamp`` (offset of the newest point
            folded in), ``theta``, ``n_nodes``/``n_edges``, the full
            ``edges`` list (``[a, b, weight]``), and the
            ``appeared``/``disappeared`` edge deltas against the
            subscription's previous event. A *gap* event instead carries
            ``{"gap": true, "missed": ..., "next_seq": ...}`` — the one
            explicit discontinuity marker a resumed subscription may see
            when requested snapshots aged out of the replay ring (or the
            hub restarted).
    """

    id: str | int | None
    seq: int
    event: dict[str, Any]

    def __post_init__(self) -> None:
        if not isinstance(self.seq, numbers.Integral) or self.seq < 0:
            raise DataError(f"stream seq must be a non-negative int, got {self.seq!r}")
        object.__setattr__(self, "seq", int(self.seq))
        if not isinstance(self.event, dict):
            raise DataError(f"stream event must be an object, got {self.event!r}")

    @classmethod
    def from_snapshot(
        cls,
        snapshot: "NetworkSnapshot",
        theta: float,
        seq: int,
        request_id: str | int | None = None,
    ) -> "StreamEvent":
        """Frame one :class:`~repro.streams.ingestion.NetworkSnapshot`."""
        network = snapshot.network
        edges = sorted(network.edge_set())
        return cls(
            id=request_id,
            seq=seq,
            event={
                "timestamp": int(snapshot.timestamp),
                "theta": float(theta),
                "n_nodes": network.n_nodes,
                "n_edges": network.n_edges,
                "edges": [
                    [a, b, network.edge_weight(a, b)] for a, b in edges
                ],
                "appeared": [list(edge) for edge in sorted(snapshot.appeared)],
                "disappeared": [
                    list(edge) for edge in sorted(snapshot.disappeared)
                ],
            },
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "id": self.id,
            "ok": True,
            "seq": self.seq,
            "event": self.event,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())


def parse_frame(payload: Any) -> Response | ErrorEnvelope | StreamEvent:
    """Parse a server→client frame (the client-side dispatcher).

    Distinguishes the three completion shapes by structure: ``ok: false`` →
    :class:`ErrorEnvelope`, an ``event`` field → :class:`StreamEvent`,
    otherwise :class:`Response`. Raises
    :class:`~repro.exceptions.DataError` on malformed frames.
    """
    if not isinstance(payload, dict):
        raise DataError(f"reply frame must be a JSON object, got {payload!r}")
    _check_version(payload)
    request_id = _check_id(payload.get("id"))
    if payload.get("ok") is False:
        error = payload.get("error")
        if not isinstance(error, dict) or "type" not in error:
            raise DataError(f"malformed error frame: {payload!r}")
        code = error.get("code")
        if code is not None and (
            not isinstance(code, numbers.Integral) or isinstance(code, bool)
        ):
            raise DataError(f"error code must be an integer, got {code!r}")
        return ErrorEnvelope(
            type=str(error["type"]),
            message=str(error.get("message", "")),
            code=None if code is None else int(code),
            id=request_id,
            retryable=bool(error.get("retryable", False)),
        )
    if payload.get("ok") is not True:
        raise DataError(f"reply frame must carry ok=true/false: {payload!r}")
    if "event" in payload:
        if "seq" not in payload:
            raise DataError(f"stream frame missing seq: {payload!r}")
        return StreamEvent(
            id=request_id, seq=payload["seq"], event=payload["event"]
        )
    if "result" not in payload:
        raise DataError(f"response frame missing result: {payload!r}")
    seconds = payload.get("seconds", 0.0)
    if not isinstance(seconds, numbers.Real) or isinstance(seconds, bool):
        raise DataError(f"seconds must be a number, got {seconds!r}")
    provenance = payload.get("provenance")
    if provenance is not None and not isinstance(provenance, dict):
        raise DataError(f"provenance must be an object, got {provenance!r}")
    return Response(
        result=payload["result"],
        id=request_id,
        seconds=float(seconds),
        provenance=provenance,
    )


def value_from_payload(spec: QuerySpec, payload: dict[str, Any]) -> Any:
    """Rebuild the op's natural Python value from its wire payload.

    The inverse of :meth:`~repro.api.spec.QueryResult.payload`, used by
    :class:`~repro.api.remote.TsubasaRemoteClient` so remote results carry
    the same value types as in-process ones. JSON serializes floats with
    shortest-round-trip ``repr``, so numeric values survive the trip
    bit-identically.

    Note the one lossy op: a ``network`` payload carries only the edges
    above threshold, so the rebuilt
    :class:`~repro.core.network.ClimateNetwork` has zero weights for
    non-edge pairs (its adjacency, edge weights, and topology are exact).
    """
    from repro.core.matrix import CorrelationMatrix
    from repro.core.network import ClimateNetwork

    if not isinstance(payload, dict):
        raise DataError(f"result payload must be an object, got {payload!r}")
    op = spec.op
    try:
        if op == "matrix":
            return CorrelationMatrix(
                names=[str(name) for name in payload["names"]],
                values=np.asarray(payload["values"], dtype=np.float64),
            )
        if op == "network":
            names = [str(name) for name in payload["names"]]
            index = {name: i for i, name in enumerate(names)}
            n = len(names)
            adjacency = np.zeros((n, n), dtype=bool)
            weights = np.zeros((n, n), dtype=np.float64)
            for a, b, weight in payload["edges"]:
                i, j = index[a], index[b]
                adjacency[i, j] = adjacency[j, i] = True
                weights[i, j] = weights[j, i] = float(weight)
            return ClimateNetwork(
                names=names,
                adjacency=adjacency,
                weights=weights,
                threshold=float(payload["theta"]),
            )
        if op in ("top_k", "anticorrelated", "pairs_in_range"):
            return [
                (str(a), str(b), float(corr)) for a, b, corr in payload["pairs"]
            ]
        if op == "neighbors":
            return [
                (str(name), float(corr)) for name, corr in payload["neighbors"]
            ]
        if op == "degree":
            return {
                str(name): int(degree)
                for name, degree in payload["degree"].items()
            }
        if op == "diff_network":
            return (
                {(a, b) for a, b in payload["appeared"]},
                {(a, b) for a, b in payload["disappeared"]},
            )
    except DataError:
        raise
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise DataError(
            f"malformed {op!r} result payload: {exc!r}"
        ) from exc
    raise DataError(f"op {op!r} has no wire payload form")
