"""Engines-as-a-service: the remote TSUBASA query client.

:class:`TsubasaRemoteClient` mirrors the
:class:`~repro.api.client.TsubasaClient` execute/execute_many surface over
the network, so swapping an in-process backend for a
:class:`~repro.api.server.TsubasaServer` deployment is a one-line change::

    client = TsubasaClient(provider=MmapProvider("sketch.mm"))   # in-process
    client = TsubasaRemoteClient("127.0.0.1:8787")               # remote

Both return :class:`~repro.api.spec.QueryResult` envelopes whose values are
the same Python types (:func:`~repro.api.protocol.value_from_payload`
rebuilds them from the wire payload — numerically bit-identical, since JSON
floats round-trip through shortest ``repr``), and both raise the same
:class:`~repro.exceptions.TsubasaError` subclasses on failure (error
envelopes carry the exception type and are re-raised by name).

Two transports share the protocol:

* ``transport="http"`` — ``POST /v1/query`` per execute and ``POST
  /v1/batch`` per execute_many over one keep-alive HTTP/1.1 connection.
* ``transport="ws"`` — one WebSocket connection; ``execute_many`` pipelines
  every request at once and matches the out-of-order completions by frame
  id (the protocol's point: slow queries don't convoy fast ones).

:meth:`TsubasaRemoteClient.subscribe` consumes a ``subscribe`` op as an
iterator of :class:`~repro.api.protocol.StreamEvent` pushes on a dedicated
WebSocket connection (regardless of the configured transport).

Everything is standard library: ``http.client`` and a minimal RFC 6455
client over ``socket``.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from collections.abc import Iterator
from dataclasses import fields
from typing import Any

from repro.api.frames import CONTENT_TYPE_V2, decode_frame, value_from_payload_v2
from repro.api.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    ErrorEnvelope,
    Request,
    Response,
    StreamEvent,
    parse_frame,
    value_from_payload,
)
from repro.api.server import _apply_mask, encode_ws_frame, ws_accept_value
from repro.api.spec import Provenance, QueryResult, QuerySpec, WindowSpec
from repro.exceptions import DataError, ServiceError

__all__ = ["TsubasaRemoteClient"]

_OP_TEXT, _OP_BINARY = 0x1, 0x2
_OP_CLOSE, _OP_PING, _OP_PONG = 0x8, 0x9, 0xA


def _parse_address(address: str) -> tuple[str, int]:
    """``host:port`` (with or without an http/ws scheme) → ``(host, port)``."""
    target = address
    for scheme in ("http://", "ws://", "https://", "wss://"):
        if target.startswith(scheme):
            if scheme in ("https://", "wss://"):
                raise ServiceError(
                    "TLS transports are not supported; terminate TLS in a "
                    "proxy and point the client at the plain listener"
                )
            target = target[len(scheme):]
            break
    target = target.rstrip("/")
    host, sep, port = target.rpartition(":")
    if not sep or not port.isdigit():
        raise DataError(
            f"address must look like 'host:port', got {address!r}"
        )
    return host or "127.0.0.1", int(port)


class _WsClientConnection:
    """A minimal blocking RFC 6455 client connection (text + binary frames)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        handshake = (
            f"GET /v1/ws HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            f"{extra}"
            "\r\n"
        )
        self._sock.sendall(handshake.encode("latin-1"))
        head = self._read_until(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise ServiceError(
                f"WebSocket handshake rejected: {status_line!r}"
            )
        accept = None
        for line in head.split(b"\r\n")[1:]:
            name, sep, value = line.decode("latin-1").partition(":")
            if sep and name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != ws_accept_value(key):
            raise ServiceError("WebSocket handshake returned a bad accept key")

    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServiceError("connection closed during WS handshake")
            self._buffer += chunk
        head, self._buffer = self._buffer.split(marker, 1)
        return head

    def _read_exactly(self, n: int) -> bytes:
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServiceError("server closed the WebSocket connection")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def send_text(self, text: str) -> None:
        self._sock.sendall(
            encode_ws_frame(_OP_TEXT, text.encode("utf-8"), mask=True)
        )

    def recv_frame(self) -> tuple[int, bytes] | None:
        """The next complete data message: ``(opcode, payload)``.

        ``None`` means the server closed the connection.
        """
        opcode0: int | None = None
        buffer = bytearray()
        while True:
            head = self._read_exactly(2)
            fin = head[0] & 0x80
            opcode = head[0] & 0x0F
            length = head[1] & 0x7F
            if length == 126:
                length = int.from_bytes(self._read_exactly(2), "big")
            elif length == 127:
                length = int.from_bytes(self._read_exactly(8), "big")
            if head[1] & 0x80:  # masked server frame: protocol violation
                mask = self._read_exactly(4)
                payload = _apply_mask(self._read_exactly(length), mask)
            else:
                payload = self._read_exactly(length)
            if opcode >= 0x8:
                if opcode == _OP_CLOSE:
                    try:
                        self._sock.sendall(
                            encode_ws_frame(_OP_CLOSE, payload[:2], mask=True)
                        )
                    except OSError:
                        pass
                    return None
                if opcode == _OP_PING:
                    self._sock.sendall(
                        encode_ws_frame(_OP_PONG, payload, mask=True)
                    )
                continue
            if opcode0 is None:
                opcode0 = opcode
            buffer += payload
            if fin:
                return opcode0, bytes(buffer)

    def recv_message(self) -> str | None:
        """The next complete text message (``None`` = server closed)."""
        frame = self.recv_frame()
        if frame is None:
            return None
        return frame[1].decode("utf-8")

    def close(self) -> None:
        try:
            self._sock.sendall(
                encode_ws_frame(_OP_CLOSE, (1000).to_bytes(2, "big"), mask=True)
            )
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class TsubasaRemoteClient:
    """Execute :class:`~repro.api.spec.QuerySpec` requests against a server.

    Args:
        address: The server's listening address — ``"host:port"``,
            optionally with an ``http://`` or ``ws://`` scheme prefix.
        transport: ``"http"`` (default) or ``"ws"`` for query execution;
            subscriptions always use a dedicated WebSocket connection.
        timeout: Socket timeout in seconds for every blocking operation.
        protocol: Wire encoding for results. ``"auto"`` (default) prefers
            the binary columnar v2 and falls back to v1 JSON against
            older servers (over HTTP the server simply ignores the
            ``Accept`` header; over WebSockets the hello exchange is
            rejected with an error envelope). ``1`` forces JSON; ``2``
            requires v2 (a WebSocket connection to a v1-only server
            raises :class:`~repro.exceptions.ServiceError`).
        auth_token: Optional bearer token sent as ``Authorization:
            Bearer <token>`` on every HTTP request and WebSocket
            handshake.
    """

    def __init__(
        self,
        address: str,
        transport: str = "http",
        timeout: float = 60.0,
        protocol: str | int = "auto",
        auth_token: str | None = None,
    ) -> None:
        if transport not in ("http", "ws"):
            raise DataError(
                f"transport must be 'http' or 'ws', got {transport!r}"
            )
        if protocol not in ("auto", 1, 2):
            raise DataError(
                f"protocol must be 'auto', 1, or 2, got {protocol!r}"
            )
        self._host, self._port = _parse_address(address)
        self._transport = transport
        self._timeout = timeout
        self._protocol = protocol
        self._want_v2 = protocol in ("auto", 2)
        self._auth_token = auth_token
        self._http: http.client.HTTPConnection | None = None
        self._ws: _WsClientConnection | None = None
        self._ws_protocol: int | None = None
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    @property
    def address(self) -> str:
        """The configured ``host:port``."""
        return f"{self._host}:{self._port}"

    @property
    def transport(self) -> str:
        """The configured execution transport."""
        return self._transport

    @property
    def negotiated_protocol(self) -> int | None:
        """The WebSocket session's wire version (``None`` before connect)."""
        return self._ws_protocol

    def close(self) -> None:
        """Close any open connections (idempotent)."""
        if self._http is not None:
            self._http.close()
            self._http = None
        if self._ws is not None:
            self._ws.close()
            self._ws = None
            self._ws_protocol = None

    def __enter__(self) -> "TsubasaRemoteClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _http_conn(self) -> http.client.HTTPConnection:
        if self._http is None:
            self._http = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._http

    def _auth_headers(self) -> dict[str, str]:
        if self._auth_token is None:
            return {}
        return {"Authorization": f"Bearer {self._auth_token}"}

    def _http_round_trip(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        accept_v2: bool = False,
    ) -> tuple[int, str, bytes]:
        """One HTTP exchange, reconnecting once on a stale keep-alive.

        Returns ``(status, content_type, raw_body)`` — the caller picks
        the decoder off the response content type (v2 negotiation).
        """
        for attempt in (0, 1):
            conn = self._http_conn()
            try:
                headers = self._auth_headers()
                if body:
                    headers["Content-Type"] = "application/json"
                if accept_v2:
                    headers["Accept"] = CONTENT_TYPE_V2
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, OSError) as exc:
                self._http.close()
                self._http = None
                if attempt:
                    raise ServiceError(
                        f"HTTP request to {self.address} failed: {exc}"
                    ) from exc
        return (
            response.status,
            response.getheader("Content-Type", "") or "",
            data,
        )

    def _http_json(
        self, method: str, path: str, body: bytes | None = None
    ) -> Any:
        status, _content_type, data = self._http_round_trip(method, path, body)
        try:
            return json.loads(data)
        except ValueError as exc:
            raise ServiceError(
                f"server returned invalid JSON (HTTP {status})"
            ) from exc

    def _ws_conn(self) -> _WsClientConnection:
        if self._ws is None:
            conn = _WsClientConnection(
                self._host, self._port, self._timeout,
                headers=self._auth_headers(),
            )
            self._ws = conn
            self._ws_protocol = self._negotiate_ws(conn)
        return self._ws

    def _negotiate_ws(self, conn: _WsClientConnection) -> int:
        """The hello exchange: prefer v2, fall back to v1 on rejection."""
        if not self._want_v2:
            return PROTOCOL_VERSION
        hello = {
            "protocol": PROTOCOL_VERSION,
            "id": self._take_id(),
            "hello": {"protocols": list(SUPPORTED_PROTOCOLS)},
        }
        conn.send_text(json.dumps(hello))
        frame = conn.recv_frame()
        if frame is None:
            raise ServiceError("server closed during protocol negotiation")
        try:
            envelope = json.loads(frame[1].decode("utf-8"))
        except ValueError as exc:
            raise ServiceError(
                f"malformed protocol negotiation reply: {exc}"
            ) from exc
        if (
            isinstance(envelope, dict)
            and envelope.get("ok") is True
            and isinstance(envelope.get("result"), dict)
            and isinstance(envelope["result"].get("hello"), dict)
        ):
            return int(envelope["result"]["hello"]["protocol"])
        # A v1-only server rejects the unknown "hello" field with an error
        # envelope — that *is* the downgrade signal.
        if self._protocol == 2:
            raise ServiceError(
                f"server at {self.address} does not speak protocol v2"
            )
        return PROTOCOL_VERSION

    def _recv_envelope(
        self, conn: _WsClientConnection
    ) -> tuple[Any, list | None] | None:
        """One server frame as ``(envelope_dict, buffers-or-None)``."""
        frame = conn.recv_frame()
        if frame is None:
            return None
        opcode, data = frame
        if opcode == _OP_BINARY:
            meta, buffers, _end = decode_frame(data)
            return meta, buffers
        return json.loads(data.decode("utf-8")), None

    # -- result assembly -----------------------------------------------------

    @staticmethod
    def _provenance_from(payload: dict[str, Any] | None) -> Provenance | None:
        if payload is None:
            return None
        known = {f.name for f in fields(Provenance)}
        return Provenance(
            **{key: value for key, value in payload.items() if key in known}
        )

    def _result_from(
        self,
        spec: QuerySpec,
        frame: Response,
        buffers: list | None = None,
    ) -> QueryResult:
        if buffers is not None:
            value = value_from_payload_v2(spec, frame.result, buffers)
        else:
            value = value_from_payload(spec, frame.result)
        return QueryResult(
            spec=spec,
            value=value,
            timings={"total": frame.seconds},
            provenance=self._provenance_from(frame.provenance),
        )

    def _complete(
        self,
        spec: QuerySpec,
        envelope: dict[str, Any],
        buffers: list | None = None,
    ) -> QueryResult:
        frame = parse_frame(envelope)
        if isinstance(frame, ErrorEnvelope):
            raise frame.to_exception()
        if not isinstance(frame, Response):
            raise ServiceError(
                f"expected a response frame, got {type(frame).__name__}"
            )
        return self._result_from(spec, frame, buffers)

    # -- the TsubasaClient surface -------------------------------------------

    def execute(self, spec: QuerySpec) -> QueryResult:
        """Execute one spec remotely; mirrors ``TsubasaClient.execute``."""
        if not isinstance(spec, QuerySpec):
            raise DataError(f"expected a QuerySpec, got {type(spec)!r}")
        if self._transport == "ws":
            return self._ws_execute_many([spec])[0]
        request = Request(spec=spec, id=self._take_id())
        status, content_type, data = self._http_round_trip(
            "POST", "/v1/query", request.to_json().encode(),
            accept_v2=self._want_v2,
        )
        if content_type.startswith(CONTENT_TYPE_V2):
            meta, buffers, _end = decode_frame(data)
            return self._complete(spec, meta, buffers)
        try:
            envelope = json.loads(data)
        except ValueError as exc:
            raise ServiceError(
                f"server returned invalid JSON (HTTP {status})"
            ) from exc
        return self._complete(spec, envelope)

    def execute_many(self, specs: list[QuerySpec]) -> list[QueryResult]:
        """Execute several specs remotely, in spec order.

        Over HTTP this is one ``/v1/batch`` round trip; over WebSockets the
        requests are pipelined on one connection and completions are
        matched by id as they arrive (out of order).
        """
        for spec in specs:
            if not isinstance(spec, QuerySpec):
                raise DataError(f"expected a QuerySpec, got {type(spec)!r}")
        if not specs:
            return []
        if self._transport == "ws":
            return self._ws_execute_many(list(specs))
        frames = [
            Request(spec=spec, id=self._take_id()).to_dict() for spec in specs
        ]
        status, content_type, data = self._http_round_trip(
            "POST", "/v1/batch", json.dumps(frames).encode(),
            accept_v2=self._want_v2,
        )
        if content_type.startswith(CONTENT_TYPE_V2):
            decoded: list[tuple[dict[str, Any], list]] = []
            offset = 0
            while offset < len(data):
                meta, buffers, offset = decode_frame(data, offset)
                decoded.append((meta, buffers))
            if len(decoded) != len(specs):
                raise ServiceError(
                    f"batch returned {len(decoded)} frames for "
                    f"{len(specs)} requests"
                )
            return [
                self._complete(spec, meta, buffers)
                for spec, (meta, buffers) in zip(specs, decoded)
            ]
        try:
            envelopes = json.loads(data)
        except ValueError as exc:
            raise ServiceError(
                f"server returned invalid JSON (HTTP {status})"
            ) from exc
        if isinstance(envelopes, dict):
            # A whole-batch failure (bad body, auth) is a single envelope.
            frame = parse_frame(envelopes)
            if isinstance(frame, ErrorEnvelope):
                raise frame.to_exception()
        if not isinstance(envelopes, list) or len(envelopes) != len(specs):
            raise ServiceError(
                f"batch returned {envelopes!r} for {len(specs)} requests"
            )
        return [
            self._complete(spec, envelope)
            for spec, envelope in zip(specs, envelopes)
        ]

    def _ws_execute_many(self, specs: list[QuerySpec]) -> list[QueryResult]:
        conn = self._ws_conn()
        by_id: dict[int, QuerySpec] = {}
        order: list[int] = []
        try:
            for spec in specs:
                request_id = self._take_id()
                by_id[request_id] = spec
                order.append(request_id)
                conn.send_text(Request(spec=spec, id=request_id).to_json())
            answers: dict[int, tuple[dict[str, Any], list | None]] = {}
            while len(answers) < len(order):
                received = self._recv_envelope(conn)
                if received is None:
                    raise ServiceError(
                        "server closed the connection with "
                        f"{len(order) - len(answers)} responses outstanding"
                    )
                envelope, buffers = received
                frame_id = envelope.get("id") if isinstance(envelope, dict) else None
                if frame_id in by_id and frame_id not in answers:
                    answers[frame_id] = (envelope, buffers)
                # Anything else (a duplicate, a stray push) is unmatchable
                # by construction — ids are freshly issued per call and
                # every call drains its own completions — so drop it rather
                # than buffer it forever.
        except (OSError, ServiceError):
            self.close()
            raise
        return [
            self._complete(by_id[request_id], *answers[request_id])
            for request_id in order
        ]

    # -- streaming -----------------------------------------------------------

    def subscribe(
        self,
        theta: float,
        window: WindowSpec | None = None,
        window_points: int | None = None,
        max_events: int | None = None,
    ) -> Iterator[StreamEvent]:
        """Consume a ``subscribe`` op as an iterator of stream events.

        Opens a dedicated WebSocket connection (whatever the configured
        transport), sends the subscription request, and yields
        :class:`~repro.api.protocol.StreamEvent` frames in sequence order
        until the server completes the stream, ``max_events`` is reached,
        or an error envelope arrives (raised as the matching
        :class:`~repro.exceptions.TsubasaError` subclass).

        Args:
            theta: Subscription network threshold (must be at or above the
                server's base stream threshold).
            window: The standing query window; must match the server's
                standing window length.
            window_points: Convenience alternative to ``window``: the
                standing window length in raw points (as reported by
                ``/v1/stats`` under ``realtime.window_points``).
            max_events: Stop (and close the connection) after this many
                events; ``None`` consumes until the stream completes.
        """
        if (window is None) == (window_points is None):
            raise DataError(
                "subscribe needs exactly one of window or window_points"
            )
        if window is None:
            window = WindowSpec(start=0, stop=int(window_points))
        spec = QuerySpec(op="subscribe", window=window, theta=theta)
        request = Request(spec=spec, id=self._take_id())
        return self._subscribe_events(request, max_events)

    def _subscribe_events(
        self, request: Request, max_events: int | None
    ) -> Iterator[StreamEvent]:
        conn = _WsClientConnection(
            self._host, self._port, self._timeout,
            headers=self._auth_headers(),
        )
        try:
            self._negotiate_ws(conn)
            conn.send_text(request.to_json())
            # The first frame is the subscription ack (or an error).
            received = self._recv_envelope(conn)
            if received is None:
                raise ServiceError("server closed before acknowledging")
            ack = parse_frame(received[0])
            if isinstance(ack, ErrorEnvelope):
                raise ack.to_exception()
            delivered = 0
            while max_events is None or delivered < max_events:
                received = self._recv_envelope(conn)
                if received is None:
                    return
                frame = parse_frame(received[0])
                if isinstance(frame, ErrorEnvelope):
                    raise frame.to_exception()
                if isinstance(frame, Response):
                    return  # stream completed cleanly
                yield frame
                delivered += 1
        finally:
            conn.close()

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The server's ``/v1/stats`` payload (server + service counters)."""
        return self._http_json("GET", "/v1/stats")

    def health(self) -> dict[str, Any]:
        """The server's ``/healthz`` payload."""
        return self._http_json("GET", "/healthz")
