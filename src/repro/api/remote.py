"""Engines-as-a-service: the remote TSUBASA query client.

:class:`TsubasaRemoteClient` mirrors the
:class:`~repro.api.client.TsubasaClient` execute/execute_many surface over
the network, so swapping an in-process backend for a
:class:`~repro.api.server.TsubasaServer` deployment is a one-line change::

    client = TsubasaClient(provider=MmapProvider("sketch.mm"))   # in-process
    client = TsubasaRemoteClient("127.0.0.1:8787")               # remote

Both return :class:`~repro.api.spec.QueryResult` envelopes whose values are
the same Python types (:func:`~repro.api.protocol.value_from_payload`
rebuilds them from the wire payload — numerically bit-identical, since JSON
floats round-trip through shortest ``repr``), and both raise the same
:class:`~repro.exceptions.TsubasaError` subclasses on failure (error
envelopes carry the exception type and are re-raised by name).

Two transports share the protocol:

* ``transport="http"`` — ``POST /v1/query`` per execute and ``POST
  /v1/batch`` per execute_many over one keep-alive HTTP/1.1 connection.
* ``transport="ws"`` — one WebSocket connection; ``execute_many`` pipelines
  every request at once and matches the out-of-order completions by frame
  id (the protocol's point: slow queries don't convoy fast ones).

:meth:`TsubasaRemoteClient.subscribe` consumes a ``subscribe`` op as an
iterator of :class:`~repro.api.protocol.StreamEvent` pushes on a dedicated
WebSocket connection (regardless of the configured transport).

Everything is standard library: ``http.client`` and a minimal RFC 6455
client over ``socket``.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
import time
from collections.abc import Callable, Iterator
from dataclasses import fields, replace
from typing import Any

from repro.api.frames import CONTENT_TYPE_V2, decode_frame, value_from_payload_v2
from repro.api.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    ErrorEnvelope,
    Request,
    Response,
    StreamEvent,
    parse_frame,
    value_from_payload,
)
from repro.api.resilience import (
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
    is_retryable,
    mark_retryable,
)
from repro.api.server import _apply_mask, encode_ws_frame, ws_accept_value
from repro.api.spec import Provenance, QueryResult, QuerySpec, WindowSpec
from repro.exceptions import (
    CircuitOpenError,
    DataError,
    DeadlineExceeded,
    ServiceError,
)

__all__ = ["TsubasaRemoteClient"]

_OP_TEXT, _OP_BINARY = 0x1, 0x2
_OP_CLOSE, _OP_PING, _OP_PONG = 0x8, 0x9, 0xA


def _parse_address(address: str) -> tuple[str, int]:
    """``host:port`` (with or without an http/ws scheme) → ``(host, port)``."""
    target = address
    for scheme in ("http://", "ws://", "https://", "wss://"):
        if target.startswith(scheme):
            if scheme in ("https://", "wss://"):
                raise ServiceError(
                    "TLS transports are not supported; terminate TLS in a "
                    "proxy and point the client at the plain listener"
                )
            target = target[len(scheme):]
            break
    target = target.rstrip("/")
    host, sep, port = target.rpartition(":")
    if not sep or not port.isdigit():
        raise DataError(
            f"address must look like 'host:port', got {address!r}"
        )
    return host or "127.0.0.1", int(port)


class _WsClientConnection:
    """A minimal blocking RFC 6455 client connection (text + binary frames)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        handshake = (
            f"GET /v1/ws HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            f"{extra}"
            "\r\n"
        )
        self._sock.sendall(handshake.encode("latin-1"))
        head = self._read_until(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise ServiceError(
                f"WebSocket handshake rejected: {status_line!r}"
            )
        accept = None
        for line in head.split(b"\r\n")[1:]:
            name, sep, value = line.decode("latin-1").partition(":")
            if sep and name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != ws_accept_value(key):
            raise ServiceError("WebSocket handshake returned a bad accept key")

    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                # Connection-level, not application-level: the request may
                # never have reached a healthy server, so re-issuing is safe.
                raise mark_retryable(
                    ServiceError("connection closed during WS handshake")
                )
            self._buffer += chunk
        head, self._buffer = self._buffer.split(marker, 1)
        return head

    def _read_exactly(self, n: int) -> bytes:
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise mark_retryable(
                    ServiceError("server closed the WebSocket connection")
                )
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def send_text(self, text: str) -> None:
        self._sock.sendall(
            encode_ws_frame(_OP_TEXT, text.encode("utf-8"), mask=True)
        )

    def recv_frame(self) -> tuple[int, bytes] | None:
        """The next complete data message: ``(opcode, payload)``.

        ``None`` means the server closed the connection.
        """
        opcode0: int | None = None
        buffer = bytearray()
        while True:
            head = self._read_exactly(2)
            fin = head[0] & 0x80
            opcode = head[0] & 0x0F
            length = head[1] & 0x7F
            if length == 126:
                length = int.from_bytes(self._read_exactly(2), "big")
            elif length == 127:
                length = int.from_bytes(self._read_exactly(8), "big")
            if head[1] & 0x80:  # masked server frame: protocol violation
                mask = self._read_exactly(4)
                payload = _apply_mask(self._read_exactly(length), mask)
            else:
                payload = self._read_exactly(length)
            if opcode >= 0x8:
                if opcode == _OP_CLOSE:
                    try:
                        self._sock.sendall(
                            encode_ws_frame(_OP_CLOSE, payload[:2], mask=True)
                        )
                    except OSError:
                        pass
                    return None
                if opcode == _OP_PING:
                    self._sock.sendall(
                        encode_ws_frame(_OP_PONG, payload, mask=True)
                    )
                continue
            if opcode0 is None:
                opcode0 = opcode
            buffer += payload
            if fin:
                return opcode0, bytes(buffer)

    def recv_message(self) -> str | None:
        """The next complete text message (``None`` = server closed)."""
        frame = self.recv_frame()
        if frame is None:
            return None
        return frame[1].decode("utf-8")

    def close(self) -> None:
        try:
            self._sock.sendall(
                encode_ws_frame(_OP_CLOSE, (1000).to_bytes(2, "big"), mask=True)
            )
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class TsubasaRemoteClient:
    """Execute :class:`~repro.api.spec.QuerySpec` requests against a server.

    Args:
        address: The server's listening address — ``"host:port"``,
            optionally with an ``http://`` or ``ws://`` scheme prefix.
        transport: ``"http"`` (default) or ``"ws"`` for query execution;
            subscriptions always use a dedicated WebSocket connection.
        timeout: Socket timeout in seconds for every blocking operation.
        protocol: Wire encoding for results. ``"auto"`` (default) prefers
            the binary columnar v2 and falls back to v1 JSON against
            older servers (over HTTP the server simply ignores the
            ``Accept`` header; over WebSockets the hello exchange is
            rejected with an error envelope). ``1`` forces JSON; ``2``
            requires v2 (a WebSocket connection to a v1-only server
            raises :class:`~repro.exceptions.ServiceError`).
        auth_token: Optional bearer token sent as ``Authorization:
            Bearer <token>`` on every HTTP request and WebSocket
            handshake.
        retry: Optional :class:`~repro.api.resilience.RetryPolicy`. When
            set, idempotent query calls (``execute``/``execute_many`` —
            every TSUBASA query is a pure read) are transparently
            re-issued on connection failures, socket timeouts, and
            server-side 503 overload shedding, with exponential backoff
            and a retry budget. ``None`` (default) propagates every
            failure immediately, exactly as before.
        circuit_breaker: Optional
            :class:`~repro.api.resilience.CircuitBreaker` guarding this
            endpoint. Defaults to a fresh breaker when ``retry`` is set
            (pass an explicit instance to share one across clients), and
            to no breaker otherwise.
    """

    def __init__(
        self,
        address: str,
        transport: str = "http",
        timeout: float = 60.0,
        protocol: str | int = "auto",
        auth_token: str | None = None,
        retry: RetryPolicy | None = None,
        circuit_breaker: CircuitBreaker | None = None,
    ) -> None:
        if transport not in ("http", "ws"):
            raise DataError(
                f"transport must be 'http' or 'ws', got {transport!r}"
            )
        if protocol not in ("auto", 1, 2):
            raise DataError(
                f"protocol must be 'auto', 1, or 2, got {protocol!r}"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise DataError(f"retry must be a RetryPolicy, got {retry!r}")
        if circuit_breaker is not None and not isinstance(
            circuit_breaker, CircuitBreaker
        ):
            raise DataError(
                f"circuit_breaker must be a CircuitBreaker, got "
                f"{circuit_breaker!r}"
            )
        self._host, self._port = _parse_address(address)
        self._transport = transport
        self._timeout = timeout
        self._protocol = protocol
        self._want_v2 = protocol in ("auto", 2)
        self._auth_token = auth_token
        self._retry = retry
        if circuit_breaker is None and retry is not None:
            circuit_breaker = CircuitBreaker()
        self._breaker = circuit_breaker
        self._budget = RetryBudget(retry) if retry is not None else None
        self._http: http.client.HTTPConnection | None = None
        self._ws: _WsClientConnection | None = None
        self._ws_protocol: int | None = None
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    @property
    def address(self) -> str:
        """The configured ``host:port``."""
        return f"{self._host}:{self._port}"

    @property
    def transport(self) -> str:
        """The configured execution transport."""
        return self._transport

    @property
    def negotiated_protocol(self) -> int | None:
        """The WebSocket session's wire version (``None`` before connect)."""
        return self._ws_protocol

    def close(self) -> None:
        """Close any open connections (idempotent)."""
        if self._http is not None:
            self._http.close()
            self._http = None
        if self._ws is not None:
            self._ws.close()
            self._ws = None
            self._ws_protocol = None

    def __enter__(self) -> "TsubasaRemoteClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- resilience ----------------------------------------------------------

    @property
    def circuit_breaker(self) -> CircuitBreaker | None:
        """The endpoint's breaker (``None`` when resilience is off)."""
        return self._breaker

    @property
    def retry_policy(self) -> RetryPolicy | None:
        """The configured retry policy (``None`` = fail fast)."""
        return self._retry

    def _deadline_from(self, timeout: float | None) -> float | None:
        """A per-call monotonic deadline from a relative timeout."""
        if timeout is None:
            return None
        if timeout <= 0:
            raise DataError(f"timeout must be positive, got {timeout!r}")
        return time.monotonic() + float(timeout)

    def _remaining(self, deadline: float | None) -> float | None:
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceeded(
                "call deadline expired on the client before the request "
                "could be (re)sent"
            )
        return remaining

    @staticmethod
    def _stamp(spec: QuerySpec, remaining: float | None) -> QuerySpec:
        """The spec with ``deadline_ms`` set to the remaining call budget.

        Each attempt re-derives the budget so the server sheds work the
        client has already given up on. A tighter deadline already on the
        spec wins.
        """
        if remaining is None:
            return spec
        budget_ms = max(int(remaining * 1000), 1)
        if spec.deadline_ms is not None:
            budget_ms = min(budget_ms, spec.deadline_ms)
        return replace(spec, deadline_ms=budget_ms)

    def _with_retries(
        self, attempt: Callable[[float | None], Any], deadline: float | None
    ) -> Any:
        """Run ``attempt`` under the client's retry policy and breaker.

        ``attempt`` receives the remaining per-call budget in seconds (or
        ``None``) and either returns a result or raises. Retryable
        failures (see :func:`~repro.api.resilience.is_retryable`) are
        re-issued with full-jitter backoff while attempts, budget tokens,
        and the call deadline all hold out; everything else propagates
        immediately. With no policy configured this is a single guarded
        call — the pre-PR-7 behavior plus breaker accounting.
        """
        policy = self._retry
        failures = 0
        while True:
            if self._breaker is not None and not self._breaker.allow():
                raise CircuitOpenError(
                    f"circuit for {self.address} is open after repeated "
                    f"connection failures; failing fast for up to "
                    f"{self._breaker.reset_timeout:.1f}s"
                )
            try:
                result = attempt(self._remaining(deadline))
            except Exception as exc:
                retryable = is_retryable(exc)
                if self._breaker is not None:
                    if retryable:
                        # Transport-level: counts toward opening.
                        self._breaker.record_failure()
                    else:
                        # The server answered (even if with an application
                        # error) — the endpoint is alive.
                        self._breaker.record_success()
                failures += 1
                if (
                    policy is None
                    or not retryable
                    or failures >= policy.max_attempts
                    or (self._budget is not None and not self._budget.spend())
                ):
                    raise
                delay = policy.backoff(failures - 1)
                if deadline is not None and (
                    time.monotonic() + delay >= deadline
                ):
                    raise
                if delay > 0:
                    time.sleep(delay)
                continue
            if self._breaker is not None:
                self._breaker.record_success()
            if self._budget is not None:
                self._budget.refund()
            return result

    @staticmethod
    def _shed_ids(
        answers: dict[Any, tuple[dict[str, Any], list | None]]
    ) -> list[Any]:
        """Keys whose answer is a server-marked-retryable error envelope.

        Works for both wire versions: a decoded v2 frame's meta is the
        same envelope shape as the v1 JSON dict.
        """
        return [
            key
            for key, (envelope, _buffers) in answers.items()
            if isinstance(envelope, dict)
            and isinstance(envelope.get("error"), dict)
            and envelope["error"].get("retryable")
        ]

    # -- connections ---------------------------------------------------------

    def _http_conn(self, remaining: float | None = None) -> http.client.HTTPConnection:
        if self._http is None:
            self._http = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        # Bound this attempt by the tighter of the socket timeout and the
        # call's remaining deadline budget (best effort — ``timeout`` is
        # picked up at connect; an existing socket is adjusted directly).
        budget = (
            self._timeout
            if remaining is None
            else min(self._timeout, remaining)
        )
        self._http.timeout = budget
        if self._http.sock is not None:
            try:
                self._http.sock.settimeout(budget)
            except OSError:
                pass
        return self._http

    def _auth_headers(self) -> dict[str, str]:
        if self._auth_token is None:
            return {}
        return {"Authorization": f"Bearer {self._auth_token}"}

    def _http_round_trip(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        accept_v2: bool = False,
        remaining: float | None = None,
    ) -> tuple[int, str, bytes]:
        """One HTTP exchange, reconnecting once on a stale keep-alive.

        Returns ``(status, content_type, raw_body)`` — the caller picks
        the decoder off the response content type (v2 negotiation). A
        connection-level failure after the reconnect is raised as a
        *retryable* :class:`~repro.exceptions.ServiceError` so the retry
        policy (when configured) can re-issue the call.
        """
        for attempt in (0, 1):
            conn = self._http_conn(remaining)
            try:
                headers = self._auth_headers()
                if body:
                    headers["Content-Type"] = "application/json"
                if accept_v2:
                    headers["Accept"] = CONTENT_TYPE_V2
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, OSError) as exc:
                self._http.close()
                self._http = None
                if attempt:
                    raise mark_retryable(
                        ServiceError(
                            f"HTTP request to {self.address} failed: {exc}"
                        )
                    ) from exc
        return (
            response.status,
            response.getheader("Content-Type", "") or "",
            data,
        )

    def _http_json(
        self, method: str, path: str, body: bytes | None = None
    ) -> Any:
        status, _content_type, data = self._http_round_trip(method, path, body)
        try:
            return json.loads(data)
        except ValueError as exc:
            raise ServiceError(
                f"server returned invalid JSON (HTTP {status})"
            ) from exc

    def _ws_conn(self) -> _WsClientConnection:
        if self._ws is None:
            conn = _WsClientConnection(
                self._host, self._port, self._timeout,
                headers=self._auth_headers(),
            )
            self._ws = conn
            self._ws_protocol = self._negotiate_ws(conn)
        return self._ws

    def _negotiate_ws(self, conn: _WsClientConnection) -> int:
        """The hello exchange: prefer v2, fall back to v1 on rejection."""
        if not self._want_v2:
            return PROTOCOL_VERSION
        hello = {
            "protocol": PROTOCOL_VERSION,
            "id": self._take_id(),
            "hello": {"protocols": list(SUPPORTED_PROTOCOLS)},
        }
        conn.send_text(json.dumps(hello))
        frame = conn.recv_frame()
        if frame is None:
            raise ServiceError("server closed during protocol negotiation")
        try:
            envelope = json.loads(frame[1].decode("utf-8"))
        except ValueError as exc:
            raise ServiceError(
                f"malformed protocol negotiation reply: {exc}"
            ) from exc
        if (
            isinstance(envelope, dict)
            and envelope.get("ok") is True
            and isinstance(envelope.get("result"), dict)
            and isinstance(envelope["result"].get("hello"), dict)
        ):
            return int(envelope["result"]["hello"]["protocol"])
        # A v1-only server rejects the unknown "hello" field with an error
        # envelope — that *is* the downgrade signal.
        if self._protocol == 2:
            raise ServiceError(
                f"server at {self.address} does not speak protocol v2"
            )
        return PROTOCOL_VERSION

    def _recv_envelope(
        self, conn: _WsClientConnection
    ) -> tuple[Any, list | None] | None:
        """One server frame as ``(envelope_dict, buffers-or-None)``."""
        frame = conn.recv_frame()
        if frame is None:
            return None
        opcode, data = frame
        if opcode == _OP_BINARY:
            meta, buffers, _end = decode_frame(data)
            return meta, buffers
        return json.loads(data.decode("utf-8")), None

    # -- result assembly -----------------------------------------------------

    @staticmethod
    def _provenance_from(payload: dict[str, Any] | None) -> Provenance | None:
        if payload is None:
            return None
        known = {f.name for f in fields(Provenance)}
        return Provenance(
            **{key: value for key, value in payload.items() if key in known}
        )

    def _result_from(
        self,
        spec: QuerySpec,
        frame: Response,
        buffers: list | None = None,
    ) -> QueryResult:
        if buffers is not None:
            value = value_from_payload_v2(spec, frame.result, buffers)
        else:
            value = value_from_payload(spec, frame.result)
        return QueryResult(
            spec=spec,
            value=value,
            timings={"total": frame.seconds},
            provenance=self._provenance_from(frame.provenance),
        )

    def _complete(
        self,
        spec: QuerySpec,
        envelope: dict[str, Any],
        buffers: list | None = None,
    ) -> QueryResult:
        frame = parse_frame(envelope)
        if isinstance(frame, ErrorEnvelope):
            raise frame.to_exception()
        if not isinstance(frame, Response):
            raise ServiceError(
                f"expected a response frame, got {type(frame).__name__}"
            )
        return self._result_from(spec, frame, buffers)

    # -- the TsubasaClient surface -------------------------------------------

    def execute(
        self, spec: QuerySpec, timeout: float | None = None
    ) -> QueryResult:
        """Execute one spec remotely; mirrors ``TsubasaClient.execute``.

        Args:
            spec: The query to run.
            timeout: Optional per-call deadline in seconds. Propagated to
                the server as the spec's ``deadline_ms`` (remaining budget
                per attempt) so expired work is shed there too; the call
                raises :class:`~repro.exceptions.DeadlineExceeded` once
                the budget is spent, retries included.
        """
        if not isinstance(spec, QuerySpec):
            raise DataError(f"expected a QuerySpec, got {type(spec)!r}")
        if self._transport == "ws":
            return self._ws_execute_many([spec], timeout=timeout)[0]
        deadline = self._deadline_from(timeout)

        def attempt(remaining: float | None) -> QueryResult:
            request = Request(
                spec=self._stamp(spec, remaining), id=self._take_id()
            )
            status, content_type, data = self._http_round_trip(
                "POST", "/v1/query", request.to_json().encode(),
                accept_v2=self._want_v2, remaining=remaining,
            )
            if content_type.startswith(CONTENT_TYPE_V2):
                meta, buffers, _end = decode_frame(data)
                return self._complete(spec, meta, buffers)
            try:
                envelope = json.loads(data)
            except ValueError as exc:
                raise ServiceError(
                    f"server returned invalid JSON (HTTP {status})"
                ) from exc
            return self._complete(spec, envelope)

        return self._with_retries(attempt, deadline)

    def execute_many(
        self, specs: list[QuerySpec], timeout: float | None = None
    ) -> list[QueryResult]:
        """Execute several specs remotely, in spec order.

        Over HTTP this is one ``/v1/batch`` round trip; over WebSockets the
        requests are pipelined on one connection and completions are
        matched by id as they arrive (out of order). With a retry policy
        configured, only the requests still missing an answer are
        re-issued after a failure — completed work is never re-sent.

        Args:
            specs: The queries to run.
            timeout: Optional per-call deadline in seconds covering the
                whole batch, retries included (see :meth:`execute`).
        """
        for spec in specs:
            if not isinstance(spec, QuerySpec):
                raise DataError(f"expected a QuerySpec, got {type(spec)!r}")
        if not specs:
            return []
        if self._transport == "ws":
            return self._ws_execute_many(list(specs), timeout=timeout)
        return self._http_execute_many(list(specs), timeout)

    def _http_execute_many(
        self, specs: list[QuerySpec], timeout: float | None
    ) -> list[QueryResult]:
        deadline = self._deadline_from(timeout)
        # Answers survive across attempts, keyed by position in ``specs``:
        # a retry re-issues only the still-unanswered requests.
        answers: dict[int, tuple[dict[str, Any], list | None]] = {}

        def attempt(remaining: float | None) -> None:
            pending = [i for i in range(len(specs)) if i not in answers]
            ids: dict[Any, int] = {}
            frames = []
            for index in pending:
                request_id = self._take_id()
                ids[request_id] = index
                frames.append(
                    Request(
                        spec=self._stamp(specs[index], remaining),
                        id=request_id,
                    ).to_dict()
                )
            status, content_type, data = self._http_round_trip(
                "POST", "/v1/batch", json.dumps(frames).encode(),
                accept_v2=self._want_v2, remaining=remaining,
            )
            decoded: list[tuple[dict[str, Any], list | None]]
            if content_type.startswith(CONTENT_TYPE_V2):
                decoded = []
                offset = 0
                while offset < len(data):
                    meta, buffers, offset = decode_frame(data, offset)
                    decoded.append((meta, buffers))
            else:
                try:
                    envelopes = json.loads(data)
                except ValueError as exc:
                    raise ServiceError(
                        f"server returned invalid JSON (HTTP {status})"
                    ) from exc
                if isinstance(envelopes, dict):
                    # A whole-batch failure (bad body, auth) is a single
                    # envelope.
                    frame = parse_frame(envelopes)
                    if isinstance(frame, ErrorEnvelope):
                        raise frame.to_exception()
                if not isinstance(envelopes, list):
                    raise ServiceError(
                        f"batch returned {envelopes!r} for "
                        f"{len(pending)} requests"
                    )
                decoded = [(envelope, None) for envelope in envelopes]
            if len(decoded) != len(pending):
                raise ServiceError(
                    f"batch returned {len(decoded)} frames for "
                    f"{len(pending)} requests"
                )
            for position, (envelope, buffers) in enumerate(decoded):
                frame_id = (
                    envelope.get("id") if isinstance(envelope, dict) else None
                )
                answers[ids.get(frame_id, pending[position])] = (
                    envelope, buffers,
                )
            self._reraise_shed(answers)

        self._with_retries(attempt, deadline)
        return [
            self._complete(spec, *answers[index])
            for index, spec in enumerate(specs)
        ]

    def _reraise_shed(
        self, answers: dict[Any, tuple[dict[str, Any], list | None]]
    ) -> None:
        """Convert server-shed answers back into a retryable failure.

        Only when a retry policy is configured: the shed envelopes are
        dropped from ``answers`` and a retryable error is raised so the
        next attempt re-issues exactly those requests. Without a policy
        the envelopes stay put and surface as exceptions at completion
        time — the pre-PR-7 behavior.
        """
        if self._retry is None:
            return
        shed = self._shed_ids(answers)
        if shed:
            for key in shed:
                del answers[key]
            raise mark_retryable(
                ServiceError(
                    f"server shed {len(shed)} request(s) under overload"
                )
            )

    def _ws_execute_many(
        self, specs: list[QuerySpec], timeout: float | None = None
    ) -> list[QueryResult]:
        deadline = self._deadline_from(timeout)
        # Ids are issued once per call; answers persist across reconnects
        # so a retry re-sends only the requests still outstanding.
        requests = [(self._take_id(), spec) for spec in specs]
        answers: dict[int, tuple[dict[str, Any], list | None]] = {}

        def attempt(remaining: float | None) -> None:
            try:
                conn = self._ws_conn()
                if remaining is not None:
                    # Bound this attempt's socket waits by the remaining
                    # call budget (best effort; a timeout is retryable).
                    try:
                        conn._sock.settimeout(min(self._timeout, remaining))
                    except OSError:
                        pass
                for request_id, spec in requests:
                    if request_id in answers:
                        continue
                    conn.send_text(
                        Request(
                            spec=self._stamp(spec, remaining), id=request_id
                        ).to_json()
                    )
                by_id = {request_id for request_id, _spec in requests}
                while len(answers) < len(requests):
                    received = self._recv_envelope(conn)
                    if received is None:
                        raise mark_retryable(
                            ServiceError(
                                "server closed the connection with "
                                f"{len(requests) - len(answers)} responses "
                                "outstanding"
                            )
                        )
                    envelope, buffers = received
                    frame_id = (
                        envelope.get("id")
                        if isinstance(envelope, dict)
                        else None
                    )
                    if frame_id in by_id and frame_id not in answers:
                        answers[frame_id] = (envelope, buffers)
                    # Anything else (a duplicate from a re-issued request,
                    # a stray push) is unmatchable by construction — so
                    # drop it rather than buffer it forever.
            except (OSError, ServiceError):
                # The connection is suspect; the next attempt (or call)
                # renegotiates from scratch.
                self.close()
                raise
            # Outside the connection guard: shed answers mean the server
            # and socket are healthy, so keep the session open and only
            # re-issue the shed requests.
            self._reraise_shed(answers)

        self._with_retries(attempt, deadline)
        return [
            self._complete(spec, *answers[request_id])
            for request_id, spec in requests
        ]

    # -- streaming -----------------------------------------------------------

    def subscribe(
        self,
        theta: float,
        window: WindowSpec | None = None,
        window_points: int | None = None,
        max_events: int | None = None,
        resume_from: int | None = None,
        auto_resume: bool | None = None,
    ) -> Iterator[StreamEvent]:
        """Consume a ``subscribe`` op as an iterator of stream events.

        Opens a dedicated WebSocket connection (whatever the configured
        transport), sends the subscription request, and yields
        :class:`~repro.api.protocol.StreamEvent` frames in sequence order
        until the server completes the stream, ``max_events`` is reached,
        or an error envelope arrives (raised as the matching
        :class:`~repro.exceptions.TsubasaError` subclass).

        Args:
            theta: Subscription network threshold (must be at or above the
                server's base stream threshold).
            window: The standing query window; must match the server's
                standing window length.
            window_points: Convenience alternative to ``window``: the
                standing window length in raw points (as reported by
                ``/v1/stats`` under ``realtime.window_points``).
            max_events: Stop (and close the connection) after this many
                events; ``None`` consumes until the stream completes.
            resume_from: The last sequence number already seen (e.g. a
                previous event's ``seq``). The server replays ``seq+1``
                onward from its bounded ring, or sends one explicit *gap*
                event (``event["gap"] is True``) when the requested
                snapshots aged out or the stream restarted.
            auto_resume: Transparently reconnect-and-resume from the last
                delivered seq when the connection drops mid-stream.
                Defaults to on when the client has a retry policy, off
                otherwise. Reconnect attempts are bounded by the policy
                (or :class:`~repro.api.resilience.RetryPolicy` defaults)
                and reset after each successful event.
        """
        if (window is None) == (window_points is None):
            raise DataError(
                "subscribe needs exactly one of window or window_points"
            )
        if window is None:
            window = WindowSpec(start=0, stop=int(window_points))
        spec = QuerySpec(
            op="subscribe", window=window, theta=theta,
            resume_from=resume_from,
        )
        if auto_resume is None:
            auto_resume = self._retry is not None
        return self._subscribe_events(spec, max_events, auto_resume)

    def _subscribe_events(
        self, spec: QuerySpec, max_events: int | None, auto_resume: bool
    ) -> Iterator[StreamEvent]:
        policy = self._retry if self._retry is not None else RetryPolicy()
        delivered = 0
        last_seq = spec.resume_from
        failures = 0  # consecutive connection-level failures
        while True:
            current = spec if last_seq is None else replace(
                spec, resume_from=last_seq
            )
            request = Request(spec=current, id=self._take_id())
            conn: _WsClientConnection | None = None
            try:
                conn = _WsClientConnection(
                    self._host, self._port, self._timeout,
                    headers=self._auth_headers(),
                )
                self._negotiate_ws(conn)
                conn.send_text(request.to_json())
                # The first frame is the subscription ack (or an error).
                received = self._recv_envelope(conn)
                if received is None:
                    raise mark_retryable(
                        ServiceError("server closed before acknowledging")
                    )
                ack = parse_frame(received[0])
                if isinstance(ack, ErrorEnvelope):
                    raise ack.to_exception()
                while max_events is None or delivered < max_events:
                    received = self._recv_envelope(conn)
                    if received is None:
                        if auto_resume:
                            # No complete-response frame: the server (or
                            # the path to it) died mid-stream. Resume.
                            raise mark_retryable(
                                ServiceError("connection lost mid-stream")
                            )
                        return
                    frame = parse_frame(received[0])
                    if isinstance(frame, ErrorEnvelope):
                        raise frame.to_exception()
                    if isinstance(frame, Response):
                        return  # stream completed cleanly
                    failures = 0
                    if not frame.event.get("gap"):
                        # Gap markers describe missing data; only real
                        # snapshots advance the resume cursor.
                        last_seq = frame.seq
                    yield frame
                    delivered += 1
                return
            except Exception as exc:
                if not (auto_resume and is_retryable(exc)):
                    raise
                failures += 1
                if failures >= policy.max_attempts:
                    raise
                delay = policy.backoff(failures - 1)
                if delay > 0:
                    time.sleep(delay)
            finally:
                if conn is not None:
                    conn.close()

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The server's ``/v1/stats`` payload (server + service counters)."""
        return self._http_json("GET", "/v1/stats")

    def health(self, deep: bool = False) -> dict[str, Any]:
        """The server's ``/healthz`` payload.

        Args:
            deep: Ask for the readiness probe (``/healthz?deep=1``):
                adds store generation, hub liveness, and in-flight budget
                utilization, with ``ok: false`` when degraded.
        """
        path = "/healthz?deep=1" if deep else "/healthz"
        return self._http_json("GET", path)
