"""Protocol v2: binary columnar frames (JSON sidecar + raw float64 buffers).

Protocol v1 (:mod:`repro.api.protocol`) ships every result as JSON, which
means a 60x60 correlation matrix costs ~3 ms of per-element float formatting
per response — several times the engine's own query latency off the prefix
tables. Version 2 keeps the v1 JSON envelope as a *sidecar* for metadata
(ids, seconds, provenance, error bodies, small row payloads) but moves bulk
numeric arrays into raw little-endian buffers taken directly from the kernel
output (``ndarray.tobytes()``), so neither side ever touches a per-element
Python object.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"TSB2"
    4       2     version (2)
    6       2     flags (reserved, 0)
    8       4     meta_len  — length of the UTF-8 JSON sidecar
    12      8     body_len  — total length of the buffer body
    20      meta_len   JSON sidecar (the v1 envelope dict; array fields are
                       replaced by ``{"$buf": i}`` references, and a
                       ``"buffers"`` table describes dtype/shape/offset)
    20+meta_len  body_len   concatenated raw buffers

A frame is self-delimiting, so a batch response is simply frames written
back to back. Buffer-bearing ops are ``matrix`` (one ``(n, n)`` float64
buffer) and ``network`` (a ``(n_edges, 2)`` uint32 edge-index buffer plus an
``(n_edges,)`` float64 weight buffer). Every other op's payload is small
rows and stays JSON inside the sidecar — same bytes as v1, just wrapped in
the binary framing.

The decoder (:func:`decode_frame`) returns NumPy arrays created with
``np.frombuffer`` over the received bytes — zero-copy, read-only — and
:func:`value_from_payload_v2` rebuilds the same value types as the v1 path,
bit-identical to in-process execution.
"""

from __future__ import annotations

import json
import struct
from typing import Any

import numpy as np

from repro.api.protocol import (
    PROTOCOL_V2,
    ErrorEnvelope,
    value_from_payload,
)
from repro.api.spec import QueryResult, QuerySpec
from repro.exceptions import DataError

__all__ = [
    "MAGIC",
    "FRAME_HEADER",
    "CONTENT_TYPE_V2",
    "encode_frame",
    "decode_frame",
    "encode_envelope",
    "encode_response_v2",
    "encode_error_v2",
    "value_from_payload_v2",
]

#: First four bytes of every v2 frame.
MAGIC = b"TSB2"

#: magic, version, flags, meta_len, body_len.
FRAME_HEADER = struct.Struct("<4sHHIQ")

#: The HTTP content type (and ``Accept`` token) that negotiates v2.
CONTENT_TYPE_V2 = "application/x-tsubasa-frame"

#: Buffer dtypes a decoder will accept (little-endian, fixed width).
_ALLOWED_DTYPES = {"<f8", "<u4"}


def _describe(array: np.ndarray, offset: int) -> dict[str, Any]:
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "offset": offset,
        "nbytes": array.nbytes,
    }


def encode_frame(meta: dict[str, Any], buffers: list[np.ndarray]) -> bytes:
    """Pack a sidecar dict plus raw buffers into one binary frame.

    ``meta`` should reference buffers by index via ``{"$buf": i}``
    placeholders; the buffer table is appended here as ``meta["buffers"]``.
    """
    parts: list[bytes] = []
    table: list[dict[str, Any]] = []
    offset = 0
    for array in buffers:
        array = np.ascontiguousarray(array)
        if array.dtype.str not in _ALLOWED_DTYPES:
            raise DataError(
                f"frame buffers must be one of {sorted(_ALLOWED_DTYPES)}, "
                f"got {array.dtype.str!r}"
            )
        table.append(_describe(array, offset))
        parts.append(array.tobytes())
        offset += array.nbytes
    if table:
        meta = dict(meta, buffers=table)
    sidecar = json.dumps(meta).encode("utf-8")
    header = FRAME_HEADER.pack(MAGIC, PROTOCOL_V2, 0, len(sidecar), offset)
    return b"".join([header, sidecar, *parts])


def decode_frame(
    data: bytes | bytearray | memoryview, offset: int = 0
) -> tuple[dict[str, Any], list[np.ndarray], int]:
    """Unpack one frame starting at ``offset``.

    Returns ``(meta, buffers, next_offset)`` where ``buffers`` are read-only
    zero-copy views (``np.frombuffer``) over ``data``. Raises
    :class:`~repro.exceptions.DataError` on any malformed frame: bad magic,
    truncation, undecodable sidecar, or a buffer table that reaches outside
    the body.
    """
    view = memoryview(data)
    if offset < 0 or offset > len(view):
        raise DataError(f"frame offset {offset} outside data of {len(view)} bytes")
    if len(view) - offset < FRAME_HEADER.size:
        raise DataError(
            f"truncated v2 frame: {len(view) - offset} bytes, "
            f"need at least {FRAME_HEADER.size}"
        )
    magic, version, _flags, meta_len, body_len = FRAME_HEADER.unpack_from(
        view, offset
    )
    if magic != MAGIC:
        raise DataError(f"bad v2 frame magic {bytes(magic)!r}")
    if version != PROTOCOL_V2:
        raise DataError(f"unsupported v2 frame version {version}")
    meta_start = offset + FRAME_HEADER.size
    body_start = meta_start + meta_len
    end = body_start + body_len
    if end > len(view):
        raise DataError(
            f"truncated v2 frame: declares {meta_len + body_len} payload "
            f"bytes, {len(view) - meta_start} available"
        )
    try:
        meta = json.loads(bytes(view[meta_start:body_start]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DataError(f"undecodable v2 frame sidecar: {exc}") from exc
    if not isinstance(meta, dict):
        raise DataError(f"v2 frame sidecar must be an object, got {meta!r}")
    buffers: list[np.ndarray] = []
    table = meta.pop("buffers", [])
    if not isinstance(table, list):
        raise DataError(f"v2 buffer table must be a list, got {table!r}")
    body = view[body_start:end]
    for entry in table:
        if not isinstance(entry, dict):
            raise DataError(f"malformed v2 buffer descriptor: {entry!r}")
        try:
            dtype = str(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
            buf_offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(
                f"malformed v2 buffer descriptor: {entry!r}"
            ) from exc
        if dtype not in _ALLOWED_DTYPES:
            raise DataError(f"v2 buffer has unsupported dtype {dtype!r}")
        if buf_offset < 0 or nbytes < 0 or buf_offset + nbytes > len(body):
            raise DataError(
                f"v2 buffer [{buf_offset}:{buf_offset + nbytes}] outside "
                f"body of {len(body)} bytes"
            )
        itemsize = np.dtype(dtype).itemsize
        if nbytes % itemsize:
            raise DataError(
                f"v2 buffer of {nbytes} bytes is not a multiple of "
                f"{dtype!r} items"
            )
        try:
            array = np.frombuffer(
                body, dtype=np.dtype(dtype), count=nbytes // itemsize,
                offset=buf_offset,
            ).reshape(shape)
        except ValueError as exc:
            raise DataError(f"v2 buffer does not fit {shape}: {exc}") from exc
        # Freeze the view: over a `bytes` payload frombuffer is already
        # read-only, but over a writable receive buffer (bytearray /
        # memoryview) it would not be — and these arrays are handed out as
        # zero-copy results that must never alias back into the socket
        # buffer as writes.
        array.setflags(write=False)
        buffers.append(array)
    return meta, buffers, end


def encode_envelope(envelope: dict[str, Any]) -> bytes:
    """Wrap a buffer-free v1 envelope dict (ack, error, stream event) as v2."""
    meta = dict(envelope, protocol=PROTOCOL_V2)
    return encode_frame(meta, [])


def _result_sidecar(result: QueryResult) -> tuple[dict[str, Any], list[np.ndarray]]:
    """The v2 payload for one result: sidecar dict + buffer list.

    ``matrix`` and ``network`` move their arrays into buffers; every other
    op reuses the v1 JSON payload unchanged.
    """
    value = result.value
    op = result.spec.op
    if op == "matrix":
        payload = {
            "names": list(value.names),
            "values": {"$buf": 0},
        }
        return payload, [np.ascontiguousarray(value.values, dtype=np.float64)]
    if op == "network":
        rows, cols = np.nonzero(np.triu(value.adjacency, k=1))
        index = np.stack(
            [rows.astype(np.uint32), cols.astype(np.uint32)], axis=1
        )
        weights = np.ascontiguousarray(
            value.weights[rows, cols], dtype=np.float64
        )
        payload = {
            "names": list(value.names),
            "n_nodes": value.n_nodes,
            "n_edges": int(len(rows)),
            "theta": float(value.threshold),
            "edge_index": {"$buf": 0},
            "edge_weights": {"$buf": 1},
        }
        return payload, [index, weights]
    return result.payload(), []


def encode_response_v2(
    result: QueryResult, request_id: str | int | None = None
) -> bytes:
    """Encode one successful completion as a binary v2 frame."""
    payload, buffers = _result_sidecar(result)
    meta: dict[str, Any] = {
        "protocol": PROTOCOL_V2,
        "id": request_id,
        "ok": True,
        "result": payload,
        "seconds": result.timings.get("total", 0.0),
    }
    if result.provenance is not None:
        meta["provenance"] = result.provenance.to_dict()
    return encode_frame(meta, buffers)


def _buffer_ref(field: Any, buffers: list[np.ndarray]) -> np.ndarray:
    if (
        not isinstance(field, dict)
        or set(field) != {"$buf"}
        or not isinstance(field["$buf"], int)
    ):
        raise DataError(f"expected a v2 buffer reference, got {field!r}")
    index = field["$buf"]
    if not 0 <= index < len(buffers):
        raise DataError(
            f"v2 buffer reference {index} outside table of {len(buffers)}"
        )
    return buffers[index]


def value_from_payload_v2(
    spec: QuerySpec, payload: dict[str, Any], buffers: list[np.ndarray]
) -> Any:
    """Rebuild the op's natural Python value from a v2 sidecar + buffers.

    The buffer-bearing ops decode their arrays zero-copy; everything else
    delegates to the v1 :func:`~repro.api.protocol.value_from_payload`.
    """
    from repro.core.matrix import CorrelationMatrix
    from repro.core.network import ClimateNetwork

    if not isinstance(payload, dict):
        raise DataError(f"result payload must be an object, got {payload!r}")
    op = spec.op
    try:
        if op == "matrix" and isinstance(payload.get("values"), dict):
            values = _buffer_ref(payload["values"], buffers)
            names = [str(name) for name in payload["names"]]
            n = len(names)
            if values.dtype != np.float64 or values.shape != (n, n):
                raise DataError(
                    f"matrix buffer {values.dtype}{values.shape} does not "
                    f"match {n} names"
                )
            return CorrelationMatrix(names=names, values=values)
        if op == "network" and "edge_index" in payload:
            index = _buffer_ref(payload["edge_index"], buffers)
            edge_weights = _buffer_ref(payload["edge_weights"], buffers)
            names = [str(name) for name in payload["names"]]
            n = len(names)
            n_edges = int(payload["n_edges"])
            if index.shape != (n_edges, 2) or edge_weights.shape != (n_edges,):
                raise DataError(
                    f"network buffers {index.shape}/{edge_weights.shape} do "
                    f"not match {n_edges} edges"
                )
            if n_edges and int(index.max(initial=0)) >= n:
                raise DataError("network edge index outside the node table")
            adjacency = np.zeros((n, n), dtype=bool)
            weights = np.zeros((n, n), dtype=np.float64)
            rows = index[:, 0].astype(np.intp)
            cols = index[:, 1].astype(np.intp)
            adjacency[rows, cols] = adjacency[cols, rows] = True
            weights[rows, cols] = weights[cols, rows] = edge_weights
            return ClimateNetwork(
                names=names,
                adjacency=adjacency,
                weights=weights,
                threshold=float(payload["theta"]),
            )
    except DataError:
        raise
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed v2 {op!r} result payload: {exc!r}") from exc
    return value_from_payload(spec, payload)


def encode_error_v2(envelope: ErrorEnvelope) -> bytes:
    """Encode a failed completion as a (buffer-free) binary v2 frame."""
    return encode_envelope(envelope.to_dict())
