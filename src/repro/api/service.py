"""Asynchronous TSUBASA query service: many specs, one shared backend.

:class:`TsubasaService` is the long-lived form of
:class:`~repro.api.client.TsubasaClient`: an :mod:`asyncio` component that
multiplexes many concurrent :class:`~repro.api.spec.QuerySpec` requests over
one shared sketch provider. Three things make it more than a thread wrapper:

* **In-flight coalescing** — requests whose specs need the same correlation
  matrix (same resolved window, engine, and method) share one computation;
  the duplicates just await the leader's future. Dashboards issuing
  ``network`` + ``top_k`` + ``degree`` over the same window pay for one
  Lemma 1 pass.
* **Result caching** — with ``result_cache > 0``, *finished* matrices stay
  in a bounded LRU keyed by the same identity coalescing uses
  (:meth:`~repro.api.client.TsubasaClient.matrix_key`), so repeat dashboards
  arriving after the original computation completed are served without
  recomputation (flagged ``cache=True`` in their provenance). Providers are
  immutable snapshots, so cached matrices never go stale within a service's
  lifetime.
* **Batched store reads** — before a drained batch of queued requests is
  dispatched, the union of every request's basic windows is prefetched
  through the provider's existing LRU in one batched read
  (:meth:`~repro.engine.providers.StoreProvider.prefetch`), so requests that
  arrive together share store round-trips instead of issuing N overlapping
  scans.
* **Observability** — :meth:`TsubasaService.stats` reports queue depth,
  in-flight count, coalesce rate, prefetched windows, and per-backend
  latency, the numbers a deployment watches.

Matrix computations run on a dedicated thread pool so the event loop stays
responsive. The default of one executor thread serializes backend access,
which is required for cache-bearing providers
(:class:`~repro.engine.providers.StoreProvider`'s LRU and sqlite3
connection are not thread-safe); asking for ``max_workers > 1`` over such a
backend is rejected at construction
(:attr:`~repro.engine.providers.SketchProvider.thread_safe_reads`).
Read-only backends (:class:`~repro.engine.providers.MmapProvider`,
:class:`~repro.engine.providers.InMemoryProvider`) run safely with
``max_workers > 1``.

Usage::

    client = TsubasaClient(provider=MmapProvider("sketch.mm"))
    async with TsubasaService(client, max_workers=4) as service:
        results = await asyncio.gather(
            *(service.submit(spec) for spec in specs)
        )
        print(service.stats().coalesce_rate)
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.api.client import MatrixExecution, TsubasaClient
from repro.api.spec import QueryResult, QuerySpec
from repro.engine.providers import SketchProvider
from repro.exceptions import (
    DataError,
    DeadlineExceeded,
    ServiceError,
    TsubasaError,
)

__all__ = ["TsubasaService", "ServiceStats", "BackendLatency", "run_specs"]


@dataclass(frozen=True)
class BackendLatency:
    """Latency aggregate of one backend's matrix computations.

    Attributes:
        count: Matrix computations measured.
        total_seconds: Summed wall time.
    """

    count: int
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        """Mean seconds per matrix computation (0.0 when unmeasured)."""
        return self.total_seconds / self.count if self.count else 0.0


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service counters (a consistent snapshot).

    Attributes:
        submitted: Specs accepted by :meth:`TsubasaService.submit`.
        completed: Specs answered successfully.
        failed: Specs that raised.
        coalesced: Requests that shared an in-flight matrix computation.
        matrices_computed: Matrix computations actually executed.
        prefetched_windows: Window records batch-read ahead of dispatch.
        queue_depth: Requests currently waiting for dispatch.
        max_queue_depth: High-water mark of the dispatch queue.
        in_flight: Matrix computations currently running or awaited.
        result_cache_hits: Matrix demands served from the finished-result
            LRU (0 when the cache is disabled).
        result_cache_misses: Matrix demands that missed the result LRU
            (coalesced and computed demands both count; 0 when disabled).
        deadline_shed: Requests failed with
            :class:`~repro.exceptions.DeadlineExceeded` because their
            ``deadline_ms`` budget ran out queued or mid-computation
            (counted in ``failed`` too).
        backend_latency: Per-backend latency aggregates, keyed by backend
            name.
    """

    submitted: int
    completed: int
    failed: int
    coalesced: int
    matrices_computed: int
    prefetched_windows: int
    queue_depth: int
    max_queue_depth: int
    in_flight: int
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    deadline_shed: int = 0
    backend_latency: dict[str, BackendLatency] = field(default_factory=dict)

    @property
    def coalesce_rate(self) -> float:
        """Fraction of matrix demands served by an in-flight computation."""
        demands = self.matrices_computed + self.coalesced
        return self.coalesced / demands if demands else 0.0

    @property
    def result_cache_hit_rate(self) -> float:
        """Fraction of matrix demands served by the result LRU."""
        demands = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / demands if demands else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible form (the ``/v1/stats`` endpoint's payload)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "coalesced": self.coalesced,
            "coalesce_rate": self.coalesce_rate,
            "matrices_computed": self.matrices_computed,
            "prefetched_windows": self.prefetched_windows,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "in_flight": self.in_flight,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "result_cache_hit_rate": self.result_cache_hit_rate,
            "deadline_shed": self.deadline_shed,
            "backend_latency": {
                backend: {
                    "count": latency.count,
                    "total_seconds": latency.total_seconds,
                    "mean_seconds": latency.mean_seconds,
                }
                for backend, latency in self.backend_latency.items()
            },
        }


class _Request:
    __slots__ = ("spec", "future", "submitted_at", "deadline")

    def __init__(self, spec: QuerySpec, future: asyncio.Future) -> None:
        self.spec = spec
        self.future = future
        self.submitted_at = time.perf_counter()
        # deadline_ms is a *relative* budget; anchor it to this process's
        # monotonic clock the moment the request is accepted, so queue
        # wait counts against it and clock skew never does.
        self.deadline = (
            self.submitted_at + spec.deadline_ms / 1000.0
            if spec.deadline_ms is not None
            else None
        )


class TsubasaService:
    """Long-lived asyncio query service over one shared client/backend.

    Args:
        client: The planner/facade executing matrix computations and
            post-processing. Its provider is shared across every request.
        max_workers: Executor threads running matrix computations. Values
            above 1 are only accepted for backends that declare
            ``thread_safe_reads`` (mmap, in-memory); cache-bearing
            providers (``StoreProvider``, ``ChunkedBuildProvider``) must
            stay at the default of 1.
        max_batch: Maximum queued requests drained per dispatch round (the
            unit of prefetch batching).
        prefetch: Batch-read the union of a dispatch round's windows through
            the provider cache before executing (on by default; only
            backends implementing ``prefetch`` do any work).
        result_cache: Finished matrices kept in a bounded LRU keyed by
            :meth:`~repro.api.client.TsubasaClient.matrix_key` and replayed
            to later identical demands. ``0`` (the default) disables the
            cache. Memory cost is ``O(result_cache * n_series^2)`` floats.
    """

    def __init__(
        self,
        client: TsubasaClient,
        max_workers: int = 1,
        max_batch: int = 64,
        prefetch: bool = True,
        result_cache: int = 0,
    ) -> None:
        if not isinstance(client, TsubasaClient):
            raise DataError(f"expected a TsubasaClient, got {type(client)!r}")
        if max_workers <= 0:
            raise DataError("max_workers must be positive")
        provider = client.provider
        if (
            max_workers > 1
            and provider is not None
            and not provider.thread_safe_reads
        ):
            # A cache-bearing backend (StoreProvider's LRU + sqlite3
            # connection, ChunkedBuildProvider's LRU) corrupts state under
            # concurrent reads; refusing here turns a data race into a
            # clear configuration error.
            raise ServiceError(
                f"the {provider.backend_name!r} backend is not safe for "
                f"concurrent reads; use max_workers=1 (or an mmap/in-memory "
                "provider for multi-threaded service execution)"
            )
        if max_batch <= 0:
            raise DataError("max_batch must be positive")
        if result_cache < 0:
            raise DataError("result_cache must be >= 0")
        self._client = client
        self._max_workers = max_workers
        self._max_batch = max_batch
        self._prefetch_enabled = prefetch
        self._queue: asyncio.Queue[_Request] | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._serve_tasks: set[asyncio.Task] = set()
        self._inflight: dict[tuple, asyncio.Task] = {}
        # Every accepted request's future, until it resolves — the drain set
        # aclose() waits on (the queue alone can look empty while a batch is
        # in the dispatcher's hands).
        self._open_requests: set[asyncio.Future] = set()
        self._closed = False
        # Counters (event-loop confined; mutated only from loop callbacks).
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._coalesced = 0
        self._matrices = 0
        self._prefetched = 0
        self._max_queue_depth = 0
        self._deadline_shed = 0
        self._latency: dict[str, list[float]] = {}
        # Finished-result LRU (event-loop confined, like the counters).
        self._result_capacity = result_cache
        self._results: OrderedDict[tuple, MatrixExecution] = OrderedDict()
        self._result_hits = 0
        self._result_misses = 0

    @property
    def client(self) -> TsubasaClient:
        """The shared query client."""
        return self._client

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "TsubasaService":
        """Start the dispatcher; idempotent until :meth:`aclose`."""
        if self._closed:
            raise ServiceError("service is closed")
        if self._dispatcher is None:
            self._queue = asyncio.Queue()
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="tsubasa-service",
            )
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        return self

    async def aclose(self) -> None:
        """Drain outstanding work, then stop the dispatcher and executor."""
        if self._closed:
            return
        self._closed = True
        # Let already-accepted requests finish before tearing down. Waiting
        # on the request futures (not the queue or serve tasks) is immune to
        # the window where the dispatcher holds a drained batch that has no
        # serve tasks yet.
        while self._open_requests:
            await asyncio.wait(set(self._open_requests))
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "TsubasaService":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- request path --------------------------------------------------------

    async def submit(self, spec: QuerySpec) -> QueryResult:
        """Submit one spec and await its result.

        Safe to call from many tasks concurrently; identical in-flight
        window selections are computed once. Raises whatever the query
        raises (:class:`~repro.exceptions.TsubasaError` subclasses for
        invalid windows/specs).
        """
        if self._closed:
            raise ServiceError("cannot submit to a closed service")
        if self._dispatcher is None:
            raise ServiceError(
                "service not started; use 'async with TsubasaService(...)' "
                "or await start()"
            )
        if not isinstance(spec, QuerySpec):
            raise DataError(f"expected a QuerySpec, got {type(spec)!r}")
        if spec.op == "subscribe":
            raise ServiceError(
                "subscribe is a streaming operation; the service answers "
                "request/response specs only (the WebSocket server bridges "
                "subscriptions to a SnapshotHub)"
            )
        loop = asyncio.get_running_loop()
        request = _Request(spec, loop.create_future())
        self._submitted += 1
        self._open_requests.add(request.future)
        request.future.add_done_callback(self._open_requests.discard)
        await self._queue.put(request)
        self._max_queue_depth = max(self._max_queue_depth, self._queue.qsize())
        return await request.future

    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self._max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._prefetch_batch(batch)
                for request in batch:
                    task = asyncio.get_running_loop().create_task(
                        self._serve_one(request)
                    )
                    self._serve_tasks.add(task)
                    task.add_done_callback(self._serve_tasks.discard)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # The dispatcher must outlive any batch: fail the batch's
                # requests and keep serving (a dead dispatcher would strand
                # every later submitter on a never-resolved future).
                for request in batch:
                    if not request.future.done():
                        self._failed += 1
                        request.future.set_exception(exc)

    async def _prefetch_batch(self, batch: list[_Request]) -> None:
        """One batched store read covering every queued request's windows."""
        provider = self._client.provider
        if not self._prefetch_enabled or provider is None:
            return
        if type(provider).prefetch is SketchProvider.prefetch:
            # The backend kept the no-op default (memory, mmap): skip the
            # window planning and executor round-trip entirely — this runs
            # on every dispatch round of the service hot path.
            return
        union: set[int] = set()
        for request in batch:
            if request.spec.engine != "exact":
                continue  # approx matrices never touch the record store
            for window in request.spec.windows:
                try:
                    key = self._client.matrix_key(request.spec, window)
                    if key in self._inflight:
                        continue  # already being computed; cache is warm
                    if self._result_capacity and key in self._results:
                        continue  # finished result replayed; no reads at all
                    selection = self._client.selection_for(window)
                except TsubasaError:
                    continue  # invalid window; _serve_one reports it
                union.update(int(i) for i in selection.full_windows)
        if not union:
            return
        loop = asyncio.get_running_loop()
        try:
            fetched = await loop.run_in_executor(
                self._executor, self._client.prefetch, sorted(union)
            )
        except asyncio.CancelledError:
            raise
        except Exception:
            return  # prefetch is best-effort; queries surface real errors
        self._prefetched += int(fetched)

    def _matrix_task(self, spec: QuerySpec, window) -> tuple[object, bool]:
        """The (possibly shared) awaitable computing one window's matrix."""
        key = self._client.matrix_key(spec, window)
        if self._result_capacity:
            cached = self._results.get(key)
            if cached is not None:
                # Replay a finished matrix: no computation, no provider
                # reads. The execution is re-stamped so the result's
                # provenance carries cache=True and no stale timings or
                # provider-cache deltas.
                self._results.move_to_end(key)
                self._result_hits += 1
                future = asyncio.get_running_loop().create_future()
                future.set_result(
                    replace(
                        cached,
                        from_cache=True,
                        seconds=0.0,
                        cache_hits=0,
                        cache_misses=0,
                    )
                )
                return future, False
            self._result_misses += 1
        task = self._inflight.get(key)
        if task is not None and not task.done():
            return task, True
        task = asyncio.get_running_loop().create_task(
            self._compute_matrix(spec, window, key)
        )
        self._inflight[key] = task
        task.add_done_callback(
            lambda t, key=key: (
                self._inflight.pop(key, None)
                if self._inflight.get(key) is t
                else None
            )
        )
        return task, False

    async def _compute_matrix(
        self, spec: QuerySpec, window, key: tuple
    ) -> MatrixExecution:
        loop = asyncio.get_running_loop()
        execution = await loop.run_in_executor(
            self._executor, self._client.compute_matrix, spec, window
        )
        self._matrices += 1
        bucket = self._latency.setdefault(execution.backend, [0, 0.0])
        bucket[0] += 1
        bucket[1] += execution.seconds
        if self._result_capacity:
            self._results[key] = execution
            self._results.move_to_end(key)
            while len(self._results) > self._result_capacity:
                self._results.popitem(last=False)
        return execution

    async def _serve_one(self, request: _Request) -> None:
        spec = request.spec
        try:
            matrix_start = time.perf_counter()
            if request.deadline is not None and matrix_start >= request.deadline:
                # The queue wait consumed the whole budget: shed before
                # doing any work — the caller is no longer listening.
                self._deadline_shed += 1
                raise DeadlineExceeded(
                    f"deadline of {spec.deadline_ms} ms expired after "
                    f"{(matrix_start - request.submitted_at) * 1000:.0f} ms "
                    "in queue"
                )
            coalesced = False
            executions: list[MatrixExecution] = []
            # Resolve both windows' tasks *before* awaiting either, so a
            # diff-network's windows coalesce with everything in the batch.
            tasks = []
            for window in spec.windows:
                task, shared = self._matrix_task(spec, window)
                if shared:
                    coalesced = True
                    self._coalesced += 1
                tasks.append(task)
            for task in tasks:
                if request.deadline is None:
                    executions.append(await task)
                    continue
                remaining = request.deadline - time.perf_counter()
                try:
                    # Shield: the computation may be coalesced with (or
                    # cached for) requests that still have time left.
                    executions.append(
                        await asyncio.wait_for(
                            asyncio.shield(task), timeout=max(remaining, 0.0)
                        )
                    )
                except asyncio.TimeoutError:
                    self._deadline_shed += 1
                    raise DeadlineExceeded(
                        f"deadline of {spec.deadline_ms} ms expired while "
                        "computing the correlation matrix"
                    ) from None
            matrix_seconds = time.perf_counter() - matrix_start
            result = self._client.build_result(
                spec,
                executions,
                coalesced=coalesced,
                started_at=request.submitted_at,
                matrix_seconds=matrix_seconds,
            )
        except BaseException as exc:  # noqa: B036 - forwarded, not swallowed
            self._failed += 1
            if not request.future.done():
                request.future.set_exception(exc)
            if not isinstance(exc, Exception):
                raise
            return
        self._completed += 1
        if not request.future.done():
            request.future.set_result(result)

    # -- observability -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service counters."""
        return ServiceStats(
            submitted=self._submitted,
            completed=self._completed,
            failed=self._failed,
            coalesced=self._coalesced,
            matrices_computed=self._matrices,
            prefetched_windows=self._prefetched,
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            max_queue_depth=self._max_queue_depth,
            in_flight=len(self._inflight),
            result_cache_hits=self._result_hits,
            result_cache_misses=self._result_misses,
            deadline_shed=self._deadline_shed,
            backend_latency={
                backend: BackendLatency(count=bucket[0], total_seconds=bucket[1])
                for backend, bucket in self._latency.items()
            },
        )


def run_specs(
    client: TsubasaClient,
    specs: list[QuerySpec],
    max_workers: int = 1,
    concurrency: int | None = None,
    result_cache: int = 0,
) -> tuple[list[QueryResult], ServiceStats]:
    """Synchronous convenience: serve ``specs`` through a temporary service.

    Spins up an event loop, submits every spec concurrently (optionally
    bounded by ``concurrency``), and returns results in spec order plus the
    final service stats. Used by the CLI and benchmarks; library callers in
    an async context should drive :class:`TsubasaService` directly.
    """

    async def _run() -> tuple[list[QueryResult], ServiceStats]:
        async with TsubasaService(
            client, max_workers=max_workers, result_cache=result_cache
        ) as service:
            if concurrency is None:
                results = await asyncio.gather(
                    *(service.submit(spec) for spec in specs)
                )
            else:
                semaphore = asyncio.Semaphore(concurrency)

                async def bounded(spec: QuerySpec) -> QueryResult:
                    async with semaphore:
                        return await service.submit(spec)

                results = await asyncio.gather(*(bounded(s) for s in specs))
            return list(results), service.stats()

    return asyncio.run(_run())
