"""Declarative query API: specs, the client facade, and the async service.

This package is the public *request surface* of the TSUBASA reproduction:

* :mod:`repro.api.spec` — :class:`~repro.api.spec.QuerySpec` /
  :class:`~repro.api.spec.WindowSpec`, the frozen, validated, serializable
  description of any supported query, and the
  :class:`~repro.api.spec.QueryResult` envelope with timings and
  :class:`~repro.api.spec.Provenance`.
* :mod:`repro.api.client` — :class:`~repro.api.client.TsubasaClient`, the
  planner/facade routing any spec to the right engine over any sketch
  backend, choosing serial vs parallel execution by a pluggable
  :class:`~repro.api.client.QueryPolicy`.
* :mod:`repro.api.service` — :class:`~repro.api.service.TsubasaService`, the
  long-lived :mod:`asyncio` service multiplexing many concurrent specs over
  one shared provider with in-flight coalescing, batched store reads, and
  :meth:`~repro.api.service.TsubasaService.stats`.
* :mod:`repro.api.protocol` — the versioned wire protocol (framed
  :class:`~repro.api.protocol.Request` / :class:`~repro.api.protocol.Response`
  / :class:`~repro.api.protocol.ErrorEnvelope` /
  :class:`~repro.api.protocol.StreamEvent` envelopes, ``protocol=1``) every
  network transport speaks.
* :mod:`repro.api.server` — :class:`~repro.api.server.TsubasaServer`, the
  stdlib asyncio HTTP/1.1 + WebSocket frontend over one service, with
  per-client backpressure and graceful drain.
* :mod:`repro.api.remote` — :class:`~repro.api.remote.TsubasaRemoteClient`,
  the drop-in remote mirror of the client's execute/execute_many surface,
  plus streaming ``subscribe`` consumption.
* :mod:`repro.api.resilience` — client-side fault-tolerance policies:
  :class:`~repro.api.resilience.RetryPolicy` (bounded, budgeted,
  full-jitter retries of idempotent queries) and
  :class:`~repro.api.resilience.CircuitBreaker` (fail fast against a dead
  endpoint).

Clients speak :class:`~repro.api.spec.QuerySpec`, never engine internals —
in-process and over the network alike.
"""

from repro.api.client import (
    AutoPolicy,
    MatrixExecution,
    ParallelPolicy,
    QueryPolicy,
    SerialPolicy,
    TsubasaClient,
)
from repro.api.frames import (
    CONTENT_TYPE_V2,
    decode_frame,
    encode_frame,
    value_from_payload_v2,
)
from repro.api.protocol import (
    PROTOCOL_V2,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    ErrorEnvelope,
    Request,
    Response,
    StreamEvent,
    parse_frame,
    parse_request,
    value_from_payload,
)
from repro.api.remote import TsubasaRemoteClient
from repro.api.resilience import (
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
    is_retryable,
)
from repro.api.server import ServerHandle, TsubasaServer, serve_in_thread
from repro.api.service import (
    BackendLatency,
    ServiceStats,
    TsubasaService,
    run_specs,
)
from repro.api.spec import (
    OPS,
    Provenance,
    QueryResult,
    QuerySpec,
    WindowSpec,
)
from repro.api.supervisor import AcceptorSupervisor, WorkerConfig

__all__ = [
    "QuerySpec",
    "WindowSpec",
    "QueryResult",
    "Provenance",
    "OPS",
    "TsubasaClient",
    "QueryPolicy",
    "SerialPolicy",
    "ParallelPolicy",
    "AutoPolicy",
    "MatrixExecution",
    "TsubasaService",
    "ServiceStats",
    "BackendLatency",
    "run_specs",
    "PROTOCOL_VERSION",
    "PROTOCOL_V2",
    "SUPPORTED_PROTOCOLS",
    "CONTENT_TYPE_V2",
    "encode_frame",
    "decode_frame",
    "value_from_payload_v2",
    "Request",
    "Response",
    "ErrorEnvelope",
    "StreamEvent",
    "parse_request",
    "parse_frame",
    "value_from_payload",
    "TsubasaServer",
    "ServerHandle",
    "serve_in_thread",
    "TsubasaRemoteClient",
    "RetryPolicy",
    "RetryBudget",
    "CircuitBreaker",
    "is_retryable",
    "AcceptorSupervisor",
    "WorkerConfig",
]
