"""Declarative query API: specs, the client facade, and the async service.

This package is the public *request surface* of the TSUBASA reproduction:

* :mod:`repro.api.spec` — :class:`~repro.api.spec.QuerySpec` /
  :class:`~repro.api.spec.WindowSpec`, the frozen, validated, serializable
  description of any supported query, and the
  :class:`~repro.api.spec.QueryResult` envelope with timings and
  :class:`~repro.api.spec.Provenance`.
* :mod:`repro.api.client` — :class:`~repro.api.client.TsubasaClient`, the
  planner/facade routing any spec to the right engine over any sketch
  backend, choosing serial vs parallel execution by a pluggable
  :class:`~repro.api.client.QueryPolicy`.
* :mod:`repro.api.service` — :class:`~repro.api.service.TsubasaService`, the
  long-lived :mod:`asyncio` service multiplexing many concurrent specs over
  one shared provider with in-flight coalescing, batched store reads, and
  :meth:`~repro.api.service.TsubasaService.stats`.

Every future scaling frontier (HTTP frontend, sharding, PostgreSQL backend)
plugs in at this layer — clients speak :class:`~repro.api.spec.QuerySpec`,
never engine internals.
"""

from repro.api.client import (
    AutoPolicy,
    MatrixExecution,
    ParallelPolicy,
    QueryPolicy,
    SerialPolicy,
    TsubasaClient,
)
from repro.api.service import (
    BackendLatency,
    ServiceStats,
    TsubasaService,
    run_specs,
)
from repro.api.spec import (
    OPS,
    Provenance,
    QueryResult,
    QuerySpec,
    WindowSpec,
)

__all__ = [
    "QuerySpec",
    "WindowSpec",
    "QueryResult",
    "Provenance",
    "OPS",
    "TsubasaClient",
    "QueryPolicy",
    "SerialPolicy",
    "ParallelPolicy",
    "AutoPolicy",
    "MatrixExecution",
    "TsubasaService",
    "ServiceStats",
    "BackendLatency",
    "run_specs",
]
