"""Stdlib-only asyncio HTTP/1.1 + WebSocket server over one TsubasaService.

:class:`TsubasaServer` lifts the query surface onto a real socket. One
listening socket speaks both protocols:

* **HTTP/1.1** (keep-alive) for request/response:

  ============================  =============================================
  ``POST /v1/query``            one :class:`~repro.api.protocol.Request`
                                frame in, one completion envelope out
  ``POST /v1/batch``            a JSON array of request frames; executed
                                concurrently through the service (windows
                                coalesce), answered as an array in input
                                order
  ``GET /v1/stats``             server + service counters
  ``GET /healthz``              liveness probe
  ============================  =============================================

* **RFC 6455 WebSockets** on ``GET /v1/ws``: each text message is a request
  frame; completions come back **out of order**, matched by ``id``. The
  ``subscribe`` op is only available here — it bridges a
  :class:`~repro.streams.hub.SnapshotHub` into
  :class:`~repro.api.protocol.StreamEvent` pushes.

Deployment properties:

* **Per-client backpressure** — every WebSocket connection owns a bounded
  send queue drained by a writer task. A consumer that stops reading fills
  its queue and is disconnected (slow-consumer policy) instead of growing
  server memory; the subscription layer applies the same bound upstream
  (:class:`~repro.streams.hub.Subscription`).
* **Concurrent-request limits** — at most ``max_inflight`` requests may be
  executing per WebSocket connection (and per HTTP batch); excess requests
  are rejected immediately with a ``ServiceError`` envelope rather than
  queued without bound.
* **Graceful drain** — :meth:`TsubasaServer.aclose` stops accepting, lets
  in-flight requests finish (bounded by ``drain_timeout``), closes
  WebSocket sessions with a going-away frame, and drains the underlying
  service via its own ``aclose()``.

Everything is standard library: ``asyncio`` streams, ``hashlib``/``base64``
for the WebSocket handshake. :func:`serve_in_thread` runs the whole stack on
a background event loop for synchronous harnesses (tests, benchmarks, the
smoke script).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import logging
import os
import socket
import threading
from time import perf_counter
from typing import Any, Callable
from urllib.parse import parse_qs

from repro.api.frames import (
    CONTENT_TYPE_V2,
    encode_envelope,
    encode_error_v2,
    encode_response_v2,
)
from repro.api.protocol import (
    PROTOCOL_V2,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    ErrorEnvelope,
    Request,
    Response,
    StreamEvent,
    parse_request,
)
from repro.api.service import TsubasaService
from repro.api.spec import WindowSpec
from repro.exceptions import (
    DataError,
    DeadlineExceeded,
    ServiceError,
    StreamError,
    TsubasaError,
)
from repro.streams.hub import SnapshotHub

__all__ = [
    "TsubasaServer",
    "ServerHandle",
    "serve_in_thread",
    "encode_ws_frame",
    "ws_accept_value",
]

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_OP_CONT, _OP_TEXT, _OP_BINARY = 0x0, 0x1, 0x2
_OP_CLOSE, _OP_PING, _OP_PONG = 0x8, 0x9, 0xA

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

logger = logging.getLogger("repro.api.server")


class _Completion:
    """One finished request: either a result or the exception that ended it.

    Materializing the wire form is deferred so the transport can pick the
    negotiated encoding (v1 JSON envelope or v2 binary frame) per
    connection.
    """

    __slots__ = ("request_id", "result", "error", "overloaded")

    def __init__(self, request_id, result=None, error=None, overloaded=False):
        self.request_id = request_id
        self.result = result
        self.error = error
        self.overloaded = overloaded

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        """The v1 JSON envelope."""
        if self.error is not None:
            return ErrorEnvelope.from_exception(
                self.error, self.request_id, retryable=self.overloaded
            ).to_dict()
        return Response.from_result(self.result, self.request_id).to_dict()

    def to_v2_bytes(self) -> bytes:
        """The binary v2 frame."""
        if self.error is not None:
            return encode_error_v2(
                ErrorEnvelope.from_exception(
                    self.error, self.request_id, retryable=self.overloaded
                )
            )
        return encode_response_v2(self.result, self.request_id)


class _BadRequest(DataError):
    """An HTTP request that cannot be served (maps to a 4xx envelope).

    A :class:`~repro.exceptions.DataError` subclass so the library's one
    error taxonomy stays total (malformed input, code 3); additionally
    carries the HTTP status the connection loop should answer with.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _apply_mask(data: bytes, mask: bytes) -> bytes:
    """XOR-(un)mask a WebSocket payload (RFC 6455 §5.3)."""
    if not data:
        return b""
    repeated = (mask * (len(data) // 4 + 1))[: len(data)]
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(repeated, "big")
    ).to_bytes(len(data), "big")


def encode_ws_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """Encode one WebSocket frame (server frames unmasked, client masked)."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += length.to_bytes(2, "big")
    else:
        header.append(mask_bit | 127)
        header += length.to_bytes(8, "big")
    if mask:
        key = os.urandom(4)
        return bytes(header) + key + _apply_mask(payload, key)
    return bytes(header) + payload


def ws_accept_value(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a handshake key (RFC 6455)."""
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def _window_points(window: WindowSpec, window_size: int) -> int:
    """A window spec's length in raw points (no plan needed)."""
    if window.length is not None:
        return int(window.length)
    if window.stop is not None:
        return int(window.stop - window.start)
    return int(window.n_windows) * window_size


class _WsSession:
    """Per-WebSocket-connection state: bounded send queue + writer task."""

    def __init__(self, server: "TsubasaServer", writer: asyncio.StreamWriter) -> None:
        self.server = server
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=server.send_buffer)
        self.inflight = 0
        self.tasks: set[asyncio.Task] = set()
        self.closing = False
        self.writer_task: asyncio.Task | None = None
        #: Monotonic stamp of the last frame header read from this peer
        #: (any frame counts — data, pong, even an unsolicited ping). The
        #: keepalive task compares it against the idle timeout.
        self.last_recv = perf_counter()
        #: Negotiated wire version for server→client frames (the WS hello
        #: exchange switches this to 2; requests stay JSON text either way).
        self.protocol = PROTOCOL_VERSION
        #: Per-connection max_inflight rejections (summarized at disconnect).
        self.rejections = 0

    def send_json(self, payload: dict[str, Any]) -> bool:
        """Queue one text frame; on overflow, disconnect the slow consumer."""
        data = json.dumps(payload).encode()
        return self._enqueue((_OP_TEXT, data))

    def send_envelope(self, payload: dict[str, Any]) -> bool:
        """Queue one buffer-free envelope in the session's wire version."""
        started = perf_counter()
        if self.protocol == PROTOCOL_V2:
            opcode, data = _OP_BINARY, encode_envelope(payload)
        else:
            opcode, data = _OP_TEXT, json.dumps(payload).encode()
        sent = self._enqueue((opcode, data))
        self.server._account_encode(
            self.protocol, perf_counter() - started, len(data) if sent else 0
        )
        return sent

    def send_completion(self, completion: "_Completion") -> bool:
        """Queue one request completion in the session's wire version."""
        started = perf_counter()
        if self.protocol == PROTOCOL_V2:
            opcode, data = _OP_BINARY, completion.to_v2_bytes()
        else:
            opcode, data = _OP_TEXT, json.dumps(completion.to_dict()).encode()
        sent = self._enqueue((opcode, data))
        self.server._account_encode(
            self.protocol, perf_counter() - started, len(data) if sent else 0
        )
        return sent

    def send_close(self, code: int = 1000, reason: str = "") -> None:
        body = code.to_bytes(2, "big") + reason.encode()[:100]
        self.closing = True
        try:
            self.queue.put_nowait((_OP_CLOSE, body))
        except asyncio.QueueFull:
            # The queue is wedged anyway; the writer task is cancelled on
            # teardown and the transport closed underneath it.
            pass

    def _enqueue(self, item: tuple[int, bytes]) -> bool:
        if self.closing:
            return False
        try:
            self.queue.put_nowait(item)
        except asyncio.QueueFull:
            # The client is not draining its socket: the writer task is
            # parked in drain() against full kernel buffers and the queue
            # bound is spent, so a polite close frame cannot get through
            # either. Abort the transport — freeing the server's memory is
            # the policy; the slow consumer sees a reset.
            self.server.stats["slow_consumer_disconnects"] += 1
            self.abort()
            return False
        return True

    def abort(self) -> None:
        """Force-close a connection whose consumer stopped draining."""
        self.closing = True
        if self.writer_task is not None:
            self.writer_task.cancel()
        transport = self.writer.transport
        try:
            transport.abort()
        except (OSError, RuntimeError):
            pass

    async def run_writer(self) -> None:
        """Drain the send queue onto the socket (one writer per client)."""
        try:
            while True:
                opcode, payload = await self.queue.get()
                self.writer.write(encode_ws_frame(opcode, payload))
                await self.writer.drain()
                if opcode == _OP_CLOSE:
                    return
        except (ConnectionError, asyncio.CancelledError):
            raise
        except OSError:
            return

    def spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self.tasks.add(task)
        task.add_done_callback(self.tasks.discard)
        return task

    async def teardown(self) -> None:
        self.closing = True
        for task in list(self.tasks):
            task.cancel()
        if self.tasks:
            await asyncio.gather(*self.tasks, return_exceptions=True)
        if self.writer_task is not None and not self.writer_task.done():
            # Give the writer a bounded chance to flush queued frames — in
            # particular the close frame ending this session, so the peer
            # sees a proper WebSocket close instead of a TCP reset. The
            # writer exits on its own after writing a close frame; queue
            # one in case the session ended without (e.g. client EOF).
            self.send_close(1000)
            try:
                await asyncio.wait_for(self.writer_task, timeout=1.0)
            except (
                asyncio.TimeoutError,
                asyncio.CancelledError,
                ConnectionError,
                OSError,
            ):
                self.writer_task.cancel()
                try:
                    await self.writer_task
                except (asyncio.CancelledError, ConnectionError, OSError):
                    pass


class TsubasaServer:
    """HTTP/1.1 + WebSocket frontend over one :class:`TsubasaService`.

    Args:
        service: The query service answering request frames. The server
            owns its drain: :meth:`aclose` calls ``service.aclose()``.
        hub: Optional :class:`~repro.streams.hub.SnapshotHub` enabling the
            ``subscribe`` op on WebSocket connections; without one,
            subscriptions are rejected with a ``ServiceError`` envelope.
        max_inflight: Concurrent requests allowed per WebSocket connection
            (and per HTTP batch); excess requests get immediate error
            envelopes.
        max_inflight_total: Optional server-wide in-flight request budget
            shared across every connection (per worker process when running
            multi-process acceptors). When the budget is spent, further
            requests are shed immediately with a ``ServiceError`` envelope
            (HTTP 503) instead of queueing; ``None`` disables the budget.
        auth_token: Optional bearer-token auth hook, checked before any
            request body is parsed. A string must equal the
            ``Authorization: Bearer <token>`` header; a callable receives
            the presented token (or ``None``) and returns truthy to admit.
            ``GET /healthz`` stays open for liveness probes.
        enable_v2: Advertise/serve the binary columnar protocol v2. Off,
            the server behaves exactly like a v1-only build — the knob
            exists so tests can exercise client fallback against an "old"
            server.
        send_buffer: Per-WebSocket-client send queue bound, in frames. A
            client that falls this many frames behind is disconnected.
        max_body_bytes: Largest accepted HTTP request body.
        max_message_bytes: Largest accepted WebSocket message.
        drain_timeout: Seconds :meth:`aclose` waits for in-flight requests
            before cancelling them.
        ws_write_buffer_bytes: Transport-level write buffer bound per
            WebSocket connection (the asyncio high-water mark and, best
            effort, ``SO_SNDBUF``). Together with ``send_buffer`` this is
            what makes the slow-consumer bound real — without it the
            kernel's default send buffer absorbs hundreds of kilobytes
            before backpressure reaches the send queue.
        ws_ping_interval: Seconds between server-initiated WebSocket
            pings on otherwise-quiet connections. ``0`` disables
            keepalive (pre-PR-7 behavior: only client pings are answered).
        ws_idle_timeout: Seconds of silence — no frame of any kind from
            the peer, pongs included — after which a connection is
            declared dead and aborted, freeing its send queue and any
            subscriptions. Must exceed ``ws_ping_interval`` so a healthy
            peer always gets a ping to answer before the axe falls.
    """

    def __init__(
        self,
        service: TsubasaService,
        hub: SnapshotHub | None = None,
        max_inflight: int = 64,
        send_buffer: int = 64,
        max_body_bytes: int = 16 * 1024 * 1024,
        max_message_bytes: int = 4 * 1024 * 1024,
        drain_timeout: float = 10.0,
        ws_write_buffer_bytes: int = 64 * 1024,
        max_inflight_total: int | None = None,
        auth_token: str | Callable[[str | None], bool] | None = None,
        enable_v2: bool = True,
        ws_ping_interval: float = 20.0,
        ws_idle_timeout: float = 60.0,
    ) -> None:
        if not isinstance(service, TsubasaService):
            raise DataError(f"expected a TsubasaService, got {type(service)!r}")
        if max_inflight <= 0:
            raise DataError("max_inflight must be positive")
        if send_buffer <= 0:
            raise DataError("send_buffer must be positive")
        if max_inflight_total is not None and max_inflight_total <= 0:
            raise DataError("max_inflight_total must be positive or None")
        if ws_ping_interval < 0 or ws_idle_timeout < 0:
            raise DataError("WebSocket keepalive intervals must be >= 0")
        if (
            ws_ping_interval > 0
            and ws_idle_timeout > 0
            and ws_idle_timeout <= ws_ping_interval
        ):
            raise DataError(
                "ws_idle_timeout must exceed ws_ping_interval (a healthy "
                "peer needs at least one ping to answer)"
            )
        self._service = service
        self._hub = hub
        self.max_inflight = max_inflight
        self.send_buffer = send_buffer
        self.max_body_bytes = max_body_bytes
        self.max_message_bytes = max_message_bytes
        self.drain_timeout = drain_timeout
        self.ws_write_buffer_bytes = ws_write_buffer_bytes
        self.max_inflight_total = max_inflight_total
        self.auth_token = auth_token
        self.enable_v2 = enable_v2
        self.ws_ping_interval = ws_ping_interval
        self.ws_idle_timeout = ws_idle_timeout
        self._server: asyncio.base_events.Server | None = None
        self._closing = False
        self._closed = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._ws_sessions: set[_WsSession] = set()
        self._auto_id = 0
        self._inflight_total = 0
        self.stats: dict[str, int] = {
            "connections_total": 0,
            "ws_connections_total": 0,
            "http_requests": 0,
            "ws_requests": 0,
            "subscriptions_opened": 0,
            "slow_consumer_disconnects": 0,
            "overload_rejections": 0,
            "rejected_global_budget": 0,
            "auth_failures": 0,
            "keepalive_disconnects": 0,
        }
        #: Wire-side accounting, keyed by protocol version: how many
        #: requests each version answered, seconds spent encoding
        #: responses, and response bytes queued to sockets.
        self.wire: dict[str, dict[str, float]] = {
            f"v{version}": {
                "requests": 0,
                "encode_seconds": 0.0,
                "bytes_sent": 0,
            }
            for version in SUPPORTED_PROTOCOLS
        }

    def _account_encode(
        self, version: int, seconds: float, nbytes: int
    ) -> None:
        wire = self.wire[f"v{version}"]
        wire["encode_seconds"] += seconds
        wire["bytes_sent"] += nbytes

    # -- lifecycle -----------------------------------------------------------

    @property
    def service(self) -> TsubasaService:
        """The underlying query service."""
        return self._service

    @property
    def hub(self) -> SnapshotHub | None:
        """The realtime snapshot hub, when one is attached."""
        return self._hub

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def host(self) -> str:
        """The bound host (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not listening")
        return str(self._server.sockets[0].getsockname()[0])

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> "TsubasaServer":
        """Bind and start accepting connections (service started too).

        With ``reuse_port`` the listening socket is opened with
        ``SO_REUSEPORT``, letting several acceptor processes share one port
        (the kernel load-balances incoming connections across them). Raises
        :class:`~repro.exceptions.ServiceError` where the platform lacks
        the option.
        """
        if self._closed:
            raise ServiceError("server is closed")
        if self._server is not None:
            return self
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ServiceError(
                "SO_REUSEPORT is not available on this platform; run a "
                "single acceptor"
            )
        await self._service.start()
        kwargs: dict[str, Any] = {"reuse_port": True} if reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port, **kwargs
        )
        return self

    async def serve_forever(self) -> None:
        """Block until the server is closed."""
        if self._server is None:
            raise ServiceError("server is not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, shut down."""
        if self._closed:
            return
        self._closing = True
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let in-flight requests complete (their responses still flush to
        # connected clients), bounded by the drain timeout.
        if self._request_tasks:
            await asyncio.wait(
                set(self._request_tasks), timeout=self.drain_timeout
            )
        for task in list(self._request_tasks):
            task.cancel()
        # Give connection handlers a short window to write the drained
        # responses (idle keep-alive connections never finish on their own,
        # so this is a scheduling grace period, not a completion wait)...
        if self._conn_tasks:
            await asyncio.wait(set(self._conn_tasks), timeout=0.25)
        # ... then tell WebSocket clients we are going away and drop
        # whatever connections remain.
        for session in list(self._ws_sessions):
            session.send_close(1001, "server shutting down")
        if self._ws_sessions:
            await asyncio.sleep(0)  # one cycle for writer tasks to flush
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self._service.aclose()

    async def __aenter__(self) -> "TsubasaServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- request handling (transport-independent) ----------------------------

    def _next_id(self) -> str:
        self._auto_id += 1
        return f"auto-{self._auto_id}"

    @staticmethod
    def _frame_id(payload: Any) -> str | int | None:
        """Best-effort id extraction from a frame that failed to parse."""
        if isinstance(payload, dict):
            request_id = payload.get("id")
            if isinstance(request_id, (str, int)) and not isinstance(
                request_id, bool
            ):
                return request_id
        return None

    async def _answer(self, request: Request) -> _Completion:
        """Execute one parsed request through the service."""
        request_id = request.id if request.id is not None else self._next_id()
        if request.spec.op == "subscribe":
            return _Completion(
                request_id,
                error=ServiceError(
                    "subscribe is a streaming op; connect to the WebSocket "
                    "endpoint /v1/ws to consume it"
                ),
            )
        if (
            self.max_inflight_total is not None
            and self._inflight_total >= self.max_inflight_total
        ):
            self.stats["rejected_global_budget"] += 1
            return _Completion(
                request_id,
                error=ServiceError(
                    f"server at capacity (global in-flight budget "
                    f"{self.max_inflight_total} spent); retry later"
                ),
                overloaded=True,
            )
        task = asyncio.get_running_loop().create_task(
            self._service.submit(request.spec)
        )
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)
        self._inflight_total += 1
        try:
            result = await task
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - per-request envelope
            return _Completion(request_id, error=exc)
        finally:
            self._inflight_total -= 1
        return _Completion(request_id, result=result)

    async def _answer_frame(self, payload: Any) -> _Completion:
        """Parse + execute one raw frame, never raising."""
        try:
            request = parse_request(payload)
        except TsubasaError as exc:
            return _Completion(self._frame_id(payload), error=exc)
        return await self._answer(request)

    # -- HTTP ----------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats["connections_total"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._connection_loop(reader, writer)
        except (
            asyncio.CancelledError,
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._closing:
            try:
                parsed = await self._read_http_request(reader)
            except _BadRequest as exc:
                self._write_http(
                    writer,
                    exc.status,
                    ErrorEnvelope.from_exception(DataError(str(exc))).to_dict(),
                    keep_alive=False,
                )
                await writer.drain()
                return
            if parsed is None:
                return
            method, target, headers, body = parsed
            path, _, query = target.partition("?")
            authorized = path == "/healthz" or self._auth_ok(headers)
            if (
                method == "GET"
                and "websocket" in headers.get("upgrade", "").lower()
            ):
                if not authorized:
                    self.stats["auth_failures"] += 1
                    self._write_http(
                        writer, 401, self._auth_error_payload(),
                        keep_alive=False,
                    )
                    await writer.drain()
                    return
                await self._websocket_session(reader, writer, path, headers)
                return
            self.stats["http_requests"] += 1
            if not authorized:
                self.stats["auth_failures"] += 1
                self._write_http(
                    writer, 401, self._auth_error_payload(), keep_alive=False
                )
                await writer.drain()
                return
            wants_v2 = self.enable_v2 and CONTENT_TYPE_V2 in headers.get(
                "accept", ""
            )
            status, payload, version = await self._route(
                method, path, body, wants_v2, query
            )
            keep_alive = headers.get("connection", "").lower() != "close"
            self._write_http(
                writer, status, payload, keep_alive=keep_alive,
                version=version,
            )
            await writer.drain()
            if not keep_alive:
                return

    async def _read_http_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line or not line.strip():
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError as exc:
            raise _BadRequest(400, f"malformed request line: {line!r}") from exc
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(400, f"malformed header line: {raw!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError as exc:
                raise _BadRequest(400, "invalid Content-Length") from exc
            if length > self.max_body_bytes:
                raise _BadRequest(
                    413, f"request body exceeds {self.max_body_bytes} bytes"
                )
            body = await reader.readexactly(length)
        elif headers.get("transfer-encoding"):
            raise _BadRequest(
                400, "chunked request bodies are not supported; send "
                "Content-Length"
            )
        return method.upper(), target, headers, body

    def _auth_ok(self, headers: dict[str, str]) -> bool:
        """Bearer-token check, before any request body is parsed."""
        if self.auth_token is None:
            return True
        header = headers.get("authorization", "")
        token = header[7:].strip() if header.startswith("Bearer ") else None
        if callable(self.auth_token):
            return bool(self.auth_token(token))
        return token is not None and token == self.auth_token

    @staticmethod
    def _auth_error_payload() -> dict:
        return ErrorEnvelope.from_exception(
            ServiceError(
                "authentication required: send Authorization: Bearer <token>"
            )
        ).to_dict()

    def _write_http(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | list | bytes,
        keep_alive: bool = True,
        version: int | None = None,
    ) -> None:
        started = perf_counter()
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
            content_type = CONTENT_TYPE_V2
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        reason = _HTTP_REASONS.get(status, "OK")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        if version is not None:
            self._account_encode(version, perf_counter() - started, len(body))

    @staticmethod
    def _parse_body(body: bytes) -> Any:
        try:
            return json.loads(body)
        except ValueError as exc:
            raise DataError(f"request body is not valid JSON: {exc}") from exc

    def _completion_status(self, completion: _Completion) -> int:
        if completion.ok:
            return 200
        if completion.overloaded:
            return 503
        if isinstance(completion.error, DeadlineExceeded):
            return 504
        return 400

    def _encode_completions_http(
        self, completions: list[_Completion], wants_v2: bool
    ) -> dict | list | bytes:
        """The response body for one or many completions.

        v1 keeps the JSON shapes (a single envelope for ``/v1/query``, an
        array for ``/v1/batch``); v2 writes binary frames back to back —
        the frames are self-delimiting, so no array wrapper is needed.
        """
        version = PROTOCOL_V2 if wants_v2 else PROTOCOL_VERSION
        self.wire[f"v{version}"]["requests"] += len(completions)
        if not wants_v2:
            return [c.to_dict() for c in completions]
        started = perf_counter()
        body = b"".join(c.to_v2_bytes() for c in completions)
        self._account_encode(PROTOCOL_V2, perf_counter() - started, 0)
        return body

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        wants_v2: bool = False,
        query: str = "",
    ) -> tuple[int, dict | list | bytes, int | None]:
        if path == "/healthz":
            if method != "GET":
                return 405, self._error_payload("use GET /healthz"), None
            payload = {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "protocols": list(
                    SUPPORTED_PROTOCOLS if self.enable_v2
                    else (PROTOCOL_VERSION,)
                ),
                "pid": os.getpid(),
            }
            if parse_qs(query).get("deep", ["0"])[-1] in ("1", "true"):
                payload.update(self._deep_health())
                if not payload["ok"]:
                    return 503, payload, None
            return 200, payload, None
        if path == "/v1/stats":
            if method != "GET":
                return 405, self._error_payload("use GET /v1/stats"), None
            return 200, self._stats_payload(), None
        if path == "/v1/query":
            if method != "POST":
                return 405, self._error_payload("use POST /v1/query"), None
            try:
                payload = self._parse_body(body)
            except DataError as exc:
                return 400, ErrorEnvelope.from_exception(exc).to_dict(), None
            completion = await self._answer_frame(payload)
            encoded = self._encode_completions_http([completion], wants_v2)
            if not wants_v2:
                encoded = encoded[0]
            return (
                self._completion_status(completion),
                encoded,
                PROTOCOL_V2 if wants_v2 else PROTOCOL_VERSION,
            )
        if path == "/v1/batch":
            if method != "POST":
                return 405, self._error_payload("use POST /v1/batch"), None
            try:
                payload = self._parse_body(body)
            except DataError as exc:
                return 400, ErrorEnvelope.from_exception(exc).to_dict(), None
            if not isinstance(payload, list):
                return 400, ErrorEnvelope.from_exception(
                    DataError("batch body must be a JSON array of frames")
                ).to_dict(), None
            semaphore = asyncio.Semaphore(self.max_inflight)

            async def bounded(frame: Any) -> _Completion:
                async with semaphore:
                    return await self._answer_frame(frame)

            completions = await asyncio.gather(
                *(bounded(frame) for frame in payload)
            )
            return 200, self._encode_completions_http(
                list(completions), wants_v2
            ), PROTOCOL_V2 if wants_v2 else PROTOCOL_VERSION
        return 404, self._error_payload(f"unknown endpoint {path}", code=404), None

    def _deep_health(self) -> dict[str, Any]:
        """Readiness detail for ``GET /healthz?deep=1``.

        Reports what a load balancer needs to drain a sick worker *before*
        it fails requests: the sketch store's commit generation (a reader
        seeing an odd value mid-probe is harmless — it just means a write
        is in flight), the realtime hub's liveness, and how much of the
        in-flight budget is spent. ``ok`` turns false — and the endpoint
        answers 503 — when the hub died underneath live subscribers or the
        admission budget is fully spent.
        """
        detail: dict[str, Any] = {}
        degraded: list[str] = []
        provider = self._service.client.provider
        read_generation = getattr(provider, "read_generation", None)
        if callable(read_generation):
            try:
                detail["store_generation"] = int(read_generation())
            except TsubasaError as exc:
                detail["store_generation"] = None
                degraded.append(f"store unreadable: {exc}")
        if self._hub is not None:
            detail["hub"] = {
                "closed": self._hub.closed,
                "published": self._hub.published,
                "last_seq": self._hub.last_seq,
                "subscriptions": self._hub.n_subscriptions,
            }
            if self._hub.closed:
                degraded.append("snapshot hub is closed")
        inflight = self._inflight_total
        detail["inflight"] = {
            "current": inflight,
            "budget": self.max_inflight_total,
            "utilization": (
                inflight / self.max_inflight_total
                if self.max_inflight_total
                else None
            ),
        }
        if (
            self.max_inflight_total is not None
            and inflight >= self.max_inflight_total
        ):
            degraded.append("in-flight budget spent")
        detail["ok"] = not degraded
        if degraded:
            detail["degraded"] = degraded
        return detail

    @staticmethod
    def _error_payload(message: str, code: int | None = None) -> dict:
        envelope = ErrorEnvelope.from_exception(ServiceError(message))
        payload = envelope.to_dict()
        if code is not None:
            payload["error"]["http_status"] = code
        return payload

    def _stats_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "server": dict(
                self.stats,
                open_connections=len(self._conn_tasks),
                ws_sessions=len(self._ws_sessions),
                inflight_requests=len(self._request_tasks),
                max_inflight_total=self.max_inflight_total,
                pid=os.getpid(),
                wire={key: dict(value) for key, value in self.wire.items()},
            ),
            "service": self._service.stats().to_dict(),
        }
        if self._hub is not None:
            payload["realtime"] = {
                "published": self._hub.published,
                "subscriptions": self._hub.n_subscriptions,
                "dropped_subscriptions": self._hub.dropped_subscriptions,
                "window_points": self._hub.window_points,
                "window_size": self._hub.window_size,
                "base_theta": self._hub.theta,
                "closed": self._hub.closed,
                "last_seq": self._hub.last_seq,
                "replay_capacity": self._hub.replay_capacity,
                "resumed_subscriptions": self._hub.resumed_subscriptions,
                "gapped_resumes": self._hub.gapped_resumes,
            }
        return payload

    # -- WebSockets ----------------------------------------------------------

    async def _websocket_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        path: str,
        headers: dict[str, str],
    ) -> None:
        key = headers.get("sec-websocket-key")
        if path != "/v1/ws" or key is None:
            status = 404 if path != "/v1/ws" else 400
            self._write_http(
                writer,
                status,
                self._error_payload(
                    "WebSocket upgrades are served at /v1/ws", code=status
                ),
                keep_alive=False,
            )
            await writer.drain()
            return
        accept = ws_accept_value(key)
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        self.stats["ws_connections_total"] += 1
        # Bound the transport-level buffering so the per-client send queue
        # is the real backpressure limit, not the kernel's send buffer.
        transport = writer.transport
        try:
            transport.set_write_buffer_limits(high=self.ws_write_buffer_bytes)
            sock = transport.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_SNDBUF,
                    self.ws_write_buffer_bytes,
                )
        except (OSError, AttributeError, NotImplementedError):
            pass  # best effort; the queue bound still applies
        session = _WsSession(self, writer)
        session.writer_task = asyncio.get_running_loop().create_task(
            session.run_writer()
        )
        self._ws_sessions.add(session)
        if self.ws_ping_interval > 0:
            session.spawn(self._ws_keepalive(session))
        try:
            await self._ws_read_loop(reader, session)
        finally:
            self._ws_sessions.discard(session)
            await session.teardown()
            if session.rejections:
                peer = writer.get_extra_info("peername")
                logger.info(
                    "ws session %s closed: %d request(s) rejected over the "
                    "per-connection in-flight limit (%d)",
                    peer, session.rejections, self.max_inflight,
                )

    async def _ws_keepalive(self, session: _WsSession) -> None:
        """Ping quiet peers; abort connections that have gone silent.

        Any frame from the peer (data, pong, even an unsolicited ping)
        refreshes ``session.last_recv``, so a healthy-but-idle client
        stays connected by answering pings while a dead peer — crashed
        process, pulled cable, NAT entry expired — stops refreshing and
        is aborted once the idle timeout elapses. Without this, such
        connections hold their send queue and subscriptions forever.
        """
        while not session.closing:
            await asyncio.sleep(self.ws_ping_interval)
            if session.closing:
                return
            if (
                self.ws_idle_timeout > 0
                and perf_counter() - session.last_recv > self.ws_idle_timeout
            ):
                self.stats["keepalive_disconnects"] += 1
                session.abort()
                return
            session._enqueue((_OP_PING, b"tsb"))

    async def _ws_read_loop(
        self, reader: asyncio.StreamReader, session: _WsSession
    ) -> None:
        while not session.closing:
            message = await self._read_ws_message(reader, session)
            if message is None:
                return
            opcode, data = message
            if opcode == _OP_BINARY:
                session.send_close(1003, "text frames only")
                return
            try:
                payload = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                session.send_envelope(
                    ErrorEnvelope.from_exception(
                        DataError(f"frame is not valid JSON: {exc}")
                    ).to_dict()
                )
                continue
            if (
                self.enable_v2
                and isinstance(payload, dict)
                and "hello" in payload
            ):
                self._handle_ws_hello(session, payload)
                continue
            try:
                request = parse_request(payload)
            except TsubasaError as exc:
                session.send_envelope(
                    ErrorEnvelope.from_exception(
                        exc, self._frame_id(payload)
                    ).to_dict()
                )
                continue
            self.stats["ws_requests"] += 1
            self.wire[f"v{session.protocol}"]["requests"] += 1
            if session.inflight >= self.max_inflight:
                # Subscriptions count too: each holds a task and a bounded
                # hub queue for the connection's lifetime, so they spend
                # the same per-connection budget as requests.
                self.stats["overload_rejections"] += 1
                session.rejections += 1
                session.send_envelope(
                    ErrorEnvelope.from_exception(
                        ServiceError(
                            f"too many in-flight requests on this connection "
                            f"(limit {self.max_inflight}); wait for "
                            "completions before sending more"
                        ),
                        request.id,
                    ).to_dict()
                )
                continue
            session.inflight += 1
            if request.spec.op == "subscribe":
                session.spawn(self._run_subscription(session, request))
            else:
                session.spawn(self._ws_answer(session, request))

    def _handle_ws_hello(
        self, session: _WsSession, payload: dict[str, Any]
    ) -> None:
        """Negotiate the session's wire version from a client hello.

        The hello is a v1 JSON frame (``{"protocol": 1, "hello":
        {"protocols": [1, 2]}}``) so a v1-only server rejects it with a
        clean unknown-field error envelope — which is exactly the signal an
        auto-negotiating client uses to fall back to v1. The ack is always
        a v1 text frame; only frames *after* it switch encodings.
        """
        unknown = set(payload) - {"protocol", "id", "hello"}
        hello = payload.get("hello")
        request_id = self._frame_id(payload)
        if (
            unknown
            or not isinstance(hello, dict)
            or set(hello) - {"protocols"}
            or not isinstance(hello.get("protocols"), list)
        ):
            session.send_envelope(
                ErrorEnvelope.from_exception(
                    DataError(f"malformed hello frame: {payload!r}"),
                    request_id,
                ).to_dict()
            )
            return
        offered = {
            int(v)
            for v in hello["protocols"]
            if isinstance(v, int) and not isinstance(v, bool)
        }
        usable = offered & set(SUPPORTED_PROTOCOLS)
        if not usable:
            session.send_envelope(
                ErrorEnvelope.from_exception(
                    DataError(
                        f"no common protocol version: client offers "
                        f"{sorted(offered)}, server speaks "
                        f"{list(SUPPORTED_PROTOCOLS)}"
                    ),
                    request_id,
                ).to_dict()
            )
            return
        chosen = max(usable)
        ack = Response(
            result={"hello": {"protocol": chosen, "server": "tsubasa"}},
            id=request_id,
        )
        session.send_envelope(ack.to_dict())
        session.protocol = chosen

    async def _ws_answer(self, session: _WsSession, request: Request) -> None:
        try:
            completion = await self._answer(request)
        finally:
            session.inflight -= 1
        session.send_completion(completion)

    async def _run_subscription(
        self, session: _WsSession, request: Request
    ) -> None:
        try:
            await self._subscription_loop(session, request)
        finally:
            session.inflight -= 1

    async def _subscription_loop(
        self, session: _WsSession, request: Request
    ) -> None:
        spec = request.spec
        request_id = request.id if request.id is not None else self._next_id()
        hub = self._hub
        if hub is None or hub.closed:
            session.send_envelope(
                ErrorEnvelope.from_exception(
                    ServiceError(
                        "this server has no live stream attached; "
                        "subscribe is unavailable"
                    ),
                    request_id,
                ).to_dict()
            )
            return
        points = _window_points(spec.window, hub.window_size)
        if points != hub.window_points:
            session.send_envelope(
                ErrorEnvelope.from_exception(
                    StreamError(
                        f"subscribe window selects {points} points, but the "
                        f"standing query window is {hub.window_points} "
                        f"points ({hub.window_points // hub.window_size} "
                        f"basic windows of {hub.window_size})"
                    ),
                    request_id,
                ).to_dict()
            )
            return
        try:
            # The same bound as the connection's send queue: the documented
            # per-client backpressure limit applies upstream too.
            subscription = hub.subscribe(
                theta=spec.theta,
                max_pending=self.send_buffer,
                resume_from=spec.resume_from,
            )
        except (StreamError, DataError) as exc:
            session.send_envelope(
                ErrorEnvelope.from_exception(exc, request_id).to_dict()
            )
            return
        self.stats["subscriptions_opened"] += 1
        ack = Response(
            result={
                "subscribed": True,
                "theta": subscription.theta,
                "window_points": hub.window_points,
                "window_size": hub.window_size,
                "last_seq": hub.last_seq,
            },
            id=request_id,
        )
        if not session.send_envelope(ack.to_dict()):
            subscription.close()
            return
        if subscription.pending_gap is not None:
            # The resume point aged out of the replay ring (or the hub was
            # restarted). One explicit gap event tells the client exactly
            # what it missed before normal delivery resumes — silence here
            # would let it believe the stream is contiguous.
            gap = StreamEvent(
                seq=max(spec.resume_from or 0, 0),
                event=dict(subscription.pending_gap, gap=True),
                id=request_id,
            )
            if not session.send_envelope(gap.to_dict()):
                subscription.close()
                return
        events = 0
        try:
            async for snapshot in subscription:
                event = StreamEvent.from_snapshot(
                    snapshot, subscription.theta, subscription.last_seq,
                    request_id,
                )
                if not session.send_envelope(event.to_dict()):
                    return  # slow consumer: close already queued
                events += 1
        except StreamError as exc:
            # The hub dropped this subscriber (its own bound); surface the
            # reason, then disconnect — same policy as the send buffer.
            self.stats["slow_consumer_disconnects"] += 1
            session.send_envelope(
                ErrorEnvelope.from_exception(exc, request_id).to_dict()
            )
            session.send_close(1008, "subscription lagged")
        else:
            # Clean end of stream: the hub closed (source drained).
            session.send_envelope(
                Response(
                    result={
                        "complete": True,
                        "events": events,
                        "last_seq": subscription.last_seq,
                    },
                    id=request_id,
                ).to_dict()
            )
        finally:
            subscription.close()

    async def _read_ws_message(
        self, reader: asyncio.StreamReader, session: _WsSession
    ) -> tuple[int, bytes] | None:
        """One complete data message (control frames handled inline)."""
        opcode0: int | None = None
        buffer = bytearray()
        while True:
            try:
                head = await reader.readexactly(2)
            except (asyncio.IncompleteReadError, ConnectionError):
                return None
            session.last_recv = perf_counter()
            fin = head[0] & 0x80
            opcode = head[0] & 0x0F
            if head[0] & 0x70:
                session.send_close(1002, "reserved bits set")
                return None
            masked = head[1] & 0x80
            length = head[1] & 0x7F
            if length == 126:
                length = int.from_bytes(await reader.readexactly(2), "big")
            elif length == 127:
                length = int.from_bytes(await reader.readexactly(8), "big")
            if length + len(buffer) > self.max_message_bytes:
                session.send_close(1009, "message too big")
                return None
            if not masked:
                # Clients MUST mask (RFC 6455 §5.1).
                session.send_close(1002, "client frames must be masked")
                return None
            mask = await reader.readexactly(4)
            payload = _apply_mask(await reader.readexactly(length), mask)
            if opcode >= 0x8:  # control frame: never fragmented
                if opcode == _OP_CLOSE:
                    session.send_close(1000)
                    return None
                if opcode == _OP_PING:
                    session._enqueue((_OP_PONG, payload))
                continue  # PONG (or unknown control): ignore
            if opcode0 is None:
                if opcode == _OP_CONT:
                    session.send_close(1002, "unexpected continuation frame")
                    return None
                opcode0 = opcode
            elif opcode != _OP_CONT:
                session.send_close(1002, "interleaved data messages")
                return None
            buffer += payload
            if fin:
                return opcode0, bytes(buffer)


# -- synchronous harness -----------------------------------------------------


class ServerHandle:
    """A running server on a background event loop (see :func:`serve_in_thread`).

    Use as a context manager, or call :meth:`stop` explicitly. The handle
    exposes the bound address for remote clients.
    """

    def __init__(self) -> None:
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self.host: str | None = None
        self.port: int | None = None

    @property
    def address(self) -> str:
        """``host:port`` of the listening socket."""
        if self.host is None or self.port is None:
            raise ServiceError("server thread is not ready")
        return f"{self.host}:{self.port}"

    @property
    def url(self) -> str:
        """``http://host:port`` of the listening socket."""
        return f"http://{self.address}"

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully drain and stop the background server (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_thread(
    client,
    host: str = "127.0.0.1",
    port: int = 0,
    hub: SnapshotHub | None = None,
    ingestor=None,
    source=None,
    pump_interval: float = 0.0,
    pump_max_updates: int | None = None,
    service_kwargs: dict[str, Any] | None = None,
    server_kwargs: dict[str, Any] | None = None,
) -> ServerHandle:
    """Run a full service + server stack on a background event loop.

    The synchronous-world harness used by tests, benchmarks, and the smoke
    script: construct a :class:`~repro.api.client.TsubasaClient`, hand it
    here, and drive the returned address with a
    :class:`~repro.api.remote.TsubasaRemoteClient`.

    Args:
        client: The :class:`~repro.api.client.TsubasaClient` the service
            executes against (only touched from the server thread).
        host: Bind host.
        port: Bind port (0 = ephemeral; read it off the handle).
        hub: Optional pre-built snapshot hub for subscriptions.
        ingestor: Build a hub around this
            :class:`~repro.streams.ingestion.StreamIngestor` (ignored when
            ``hub`` is given).
        source: Optional batch source pumped through the hub's ingestor in
            the background for live subscriptions.
        pump_interval: Pause between pumped batches, in seconds.
        pump_max_updates: Stop the pump after this many snapshots.
        service_kwargs: Extra :class:`TsubasaService` arguments.
        server_kwargs: Extra :class:`TsubasaServer` arguments.

    Returns:
        A started :class:`ServerHandle` (raises if startup failed).
    """
    handle = ServerHandle()

    def main() -> None:
        async def run() -> None:
            service = TsubasaService(client, **(service_kwargs or {}))
            the_hub = hub
            if the_hub is None and ingestor is not None:
                the_hub = SnapshotHub(ingestor)
            server = TsubasaServer(
                service, hub=the_hub, **(server_kwargs or {})
            )
            pump_task: asyncio.Task | None = None
            try:
                await server.start(host=host, port=port)
            except BaseException as exc:
                handle._error = exc
                handle._ready.set()
                raise
            if the_hub is not None and source is not None:
                pump_task = asyncio.get_running_loop().create_task(
                    the_hub.pump(
                        source,
                        interval=pump_interval,
                        max_updates=pump_max_updates,
                    )
                )

                def pump_done(task: asyncio.Task, hub=the_hub) -> None:
                    # Whether the source drained or the pump crashed, the
                    # stream is over: close the hub so subscribers get
                    # their completion frame instead of hanging
                    # acked-but-silent. (Cancellation is shutdown; aclose
                    # handles the rest.)
                    if task.cancelled():
                        return
                    task.exception()  # retrieved: drain and crash both end
                    if not hub.closed:
                        hub.close()

                pump_task.add_done_callback(pump_done)
            handle._loop = asyncio.get_running_loop()
            handle._shutdown = asyncio.Event()
            handle.host = server.host
            handle.port = server.port
            handle._ready.set()
            await handle._shutdown.wait()
            if pump_task is not None:
                pump_task.cancel()
                try:
                    await pump_task
                except (asyncio.CancelledError, Exception):
                    pass
            if the_hub is not None:
                the_hub.close()
            await server.aclose()

        try:
            asyncio.run(run())
        except BaseException as exc:  # noqa: BLE001 - surfaced via handle
            if handle._error is None:
                handle._error = exc
                handle._ready.set()

    thread = threading.Thread(
        target=main, name="tsubasa-server", daemon=True
    )
    handle._thread = thread
    thread.start()
    handle._ready.wait(timeout=30.0)
    if handle._error is not None:
        raise ServiceError(
            f"server thread failed to start: {handle._error!r}"
        ) from handle._error
    if handle.port is None:
        handle.stop()
        raise ServiceError("server thread did not become ready in time")
    return handle
