"""Network accuracy comparison (§4.1's measures, used by Fig. 5a).

Compares an approximate network against the exact one with the paper's two
measures — edge count and the correlation similarity ratio ``D_p`` — plus
explicit false-positive / false-negative counts, which make the paper's
"superset, never false negatives" claim (Eq. 4) directly assertable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matrix import count_edges, similarity_ratio, threshold_adjacency
from repro.exceptions import DataError

__all__ = ["NetworkComparison", "compare_networks", "compare_matrices"]


@dataclass(frozen=True)
class NetworkComparison:
    """Agreement statistics between an approximate and an exact network.

    Attributes:
        exact_edges: Edge count of the exact (reference) network.
        approx_edges: Edge count of the approximate network.
        similarity: Correlation similarity ratio ``D_p``.
        false_positives: Approximate edges absent from the exact network.
        false_negatives: Exact edges missing from the approximate network.
    """

    exact_edges: int
    approx_edges: int
    similarity: float
    false_positives: int
    false_negatives: int

    @property
    def is_superset(self) -> bool:
        """Whether the approximate network is a superset of the exact one."""
        return self.false_negatives == 0


def compare_networks(
    exact_adjacency: np.ndarray, approx_adjacency: np.ndarray
) -> NetworkComparison:
    """Compare two boolean adjacency matrices (exact as reference)."""
    exact = np.asarray(exact_adjacency, dtype=bool)
    approx = np.asarray(approx_adjacency, dtype=bool)
    if exact.shape != approx.shape:
        raise DataError(f"shape mismatch: {exact.shape} vs {approx.shape}")
    false_pos = count_edges(approx & ~exact)
    false_neg = count_edges(exact & ~approx)
    return NetworkComparison(
        exact_edges=count_edges(exact),
        approx_edges=count_edges(approx),
        similarity=similarity_ratio(exact, approx),
        false_positives=false_pos,
        false_negatives=false_neg,
    )


def compare_matrices(
    exact_corr: np.ndarray, approx_corr: np.ndarray, theta: float
) -> NetworkComparison:
    """Threshold two correlation matrices at ``theta`` and compare them."""
    return compare_networks(
        threshold_adjacency(exact_corr, theta),
        threshold_adjacency(approx_corr, theta),
    )
