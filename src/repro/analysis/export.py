"""Exporting networks and matrices to downstream tools.

The right-hand side of the paper's Figure 1: the constructed correlation
matrix and climate network feed "visualization and network science tools".
These writers cover the common interchange formats:

* :func:`write_edge_csv` — one row per edge with weight and, when known,
  node coordinates (ready for GIS / flow-map tools).
* :func:`write_graphml` — GraphML via ``networkx`` (Gephi, Cytoscape, igraph).
* :func:`write_adjacency_npz` — compressed adjacency + weights + names for
  numpy pipelines.
* :func:`write_matrix_csv` — the full labeled correlation matrix.

Every writer has a matching reader or round-trip test.
"""

from __future__ import annotations

import csv
from pathlib import Path

import networkx as nx
import numpy as np

from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.exceptions import DataError

__all__ = [
    "write_edge_csv",
    "write_graphml",
    "write_adjacency_npz",
    "read_adjacency_npz",
    "write_matrix_csv",
]


def write_edge_csv(network: ClimateNetwork, path: str | Path) -> int:
    """Write one row per edge: names, weight, and coordinates when known.

    Returns:
        The number of edge rows written.
    """
    has_coords = bool(network.coordinates)
    header = ["source", "target", "weight"]
    if has_coords:
        header += ["source_lat", "source_lon", "target_lat", "target_lon"]
    edges = sorted(network.edge_set())
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for a, b in edges:
            row: list[object] = [a, b, f"{network.edge_weight(a, b):.10g}"]
            if has_coords:
                coords = network.coordinates
                row += [*coords.get(a, ("", "")), *coords.get(b, ("", ""))]
            writer.writerow(row)
    return len(edges)


def write_graphml(network: ClimateNetwork, path: str | Path) -> None:
    """Write the network as GraphML (node lat/lon + edge weights preserved)."""
    nx.write_graphml(network.to_networkx(), str(path))


def write_adjacency_npz(network: ClimateNetwork, path: str | Path) -> None:
    """Write adjacency, weights, names, and threshold as a ``.npz`` archive."""
    np.savez_compressed(
        path,
        names=np.array(network.names),
        adjacency=network.adjacency,
        weights=network.weights,
        threshold=np.float64(network.threshold),
    )


def read_adjacency_npz(path: str | Path) -> ClimateNetwork:
    """Load a network written by :func:`write_adjacency_npz`."""
    with np.load(path) as archive:
        for key in ("names", "adjacency", "weights", "threshold"):
            if key not in archive:
                raise DataError(f"{path}: missing archive key {key!r}")
        return ClimateNetwork(
            names=[str(n) for n in archive["names"]],
            adjacency=archive["adjacency"],
            weights=archive["weights"],
            threshold=float(archive["threshold"]),
        )


def write_matrix_csv(matrix: CorrelationMatrix, path: str | Path) -> None:
    """Write the full labeled correlation matrix as CSV (header row+column)."""
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(["", *matrix.names])
        for name, row in zip(matrix.names, matrix.values):
            writer.writerow([name, *(f"{v:.10g}" for v in row)])
