"""Geographic structure of climate networks.

The paper stresses that "the geographical locality of nodes does not
directly imply the topology of a network" — short-range edges are expected
from spatial autocorrelation, but *long-range* edges (teleconnections) carry
the interesting physics. These helpers quantify that split:

* :func:`edge_lengths` — great-circle length of every edge.
* :func:`teleconnection_edges` — edges longer than a distance cutoff.
* :func:`degree_field` — per-node ``(lat, lon, degree)`` for map plotting.
* :func:`correlation_vs_distance` — binned decay of correlation with
  distance, the field's standard diagnostic of spatial structure.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.data.grid import haversine_km
from repro.exceptions import DataError

__all__ = [
    "edge_lengths",
    "teleconnection_edges",
    "degree_field",
    "correlation_vs_distance",
]


def _require_coordinates(network: ClimateNetwork) -> dict[str, tuple[float, float]]:
    if not network.coordinates:
        raise DataError("network carries no node coordinates")
    missing = [n for n in network.names if n not in network.coordinates]
    if missing:
        raise DataError(f"nodes without coordinates: {missing[:5]}")
    return network.coordinates


def edge_lengths(network: ClimateNetwork) -> dict[tuple[str, str], float]:
    """Great-circle length (km) of every edge."""
    coords = _require_coordinates(network)
    lengths = {}
    for a, b in network.edge_set():
        (lat1, lon1), (lat2, lon2) = coords[a], coords[b]
        lengths[(a, b)] = float(haversine_km(lat1, lon1, lat2, lon2))
    return lengths


def teleconnection_edges(
    network: ClimateNetwork, min_km: float = 2000.0
) -> list[tuple[str, str, float, float]]:
    """Edges spanning at least ``min_km``, longest first.

    Returns:
        ``(name_a, name_b, distance_km, correlation)`` tuples.
    """
    if min_km < 0:
        raise DataError(f"min_km must be >= 0, got {min_km}")
    lengths = edge_lengths(network)
    far = [
        (a, b, d, network.edge_weight(a, b))
        for (a, b), d in lengths.items()
        if d >= min_km
    ]
    return sorted(far, key=lambda item: -item[2])


def degree_field(network: ClimateNetwork) -> np.ndarray:
    """Per-node ``(lat, lon, degree)`` rows, in ``names`` order.

    The degree field over a map is the standard visualization of
    teleconnection hubs (e.g. the El Niño studies cited in the paper).
    """
    coords = _require_coordinates(network)
    degrees = network.degrees()
    rows = [
        (coords[name][0], coords[name][1], float(degree))
        for name, degree in zip(network.names, degrees)
    ]
    return np.array(rows)


def correlation_vs_distance(
    matrix: CorrelationMatrix,
    coordinates: dict[str, tuple[float, float]],
    bin_km: float = 500.0,
    max_km: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mean pairwise correlation binned by great-circle distance.

    Args:
        matrix: A labeled correlation matrix.
        coordinates: ``name -> (lat, lon)`` for every series.
        bin_km: Distance bin width.
        max_km: Drop pairs farther than this; ``None`` keeps all.

    Returns:
        ``(bin_centers_km, mean_correlation, pair_counts)`` arrays over the
        non-empty bins.
    """
    if bin_km <= 0:
        raise DataError(f"bin_km must be positive, got {bin_km}")
    missing = [n for n in matrix.names if n not in coordinates]
    if missing:
        raise DataError(f"series without coordinates: {missing[:5]}")
    lats = np.array([coordinates[n][0] for n in matrix.names])
    lons = np.array([coordinates[n][1] for n in matrix.names])
    rows, cols = np.triu_indices(matrix.n_series, k=1)
    dists = haversine_km(lats[rows], lons[rows], lats[cols], lons[cols])
    corrs = matrix.values[rows, cols]
    if max_km is not None:
        keep = dists <= max_km
        dists, corrs = dists[keep], corrs[keep]
    if dists.size == 0:
        raise DataError("no pairs to bin")

    bins = np.floor(dists / bin_km).astype(np.int64)
    n_bins = int(bins.max()) + 1
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    np.add.at(sums, bins, corrs)
    np.add.at(counts, bins, 1.0)
    non_empty = counts > 0
    centers = (np.arange(n_bins) + 0.5) * bin_km
    return (
        centers[non_empty],
        sums[non_empty] / counts[non_empty],
        counts[non_empty].astype(np.int64),
    )
