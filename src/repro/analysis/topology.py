"""Network topology analysis for climate networks.

Climate-network studies read physics off topology: node degree fields locate
teleconnection hubs (El Niño studies), clustering and component structure
track regime shifts, degree distributions reveal scale-free behavior
(earthquake networks). These helpers operate directly on
:class:`~repro.core.network.ClimateNetwork` objects and return plain numpy
structures; heavier algorithms delegate to ``networkx``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.network import ClimateNetwork

__all__ = [
    "TopologySummary",
    "summarize_topology",
    "degree_distribution",
    "connected_components",
    "average_clustering",
    "hub_nodes",
]


@dataclass(frozen=True)
class TopologySummary:
    """Headline topology statistics of a climate network.

    Attributes:
        n_nodes: Node count.
        n_edges: Undirected edge count.
        density: Fraction of possible edges present.
        mean_degree: Average node degree.
        max_degree: Maximum node degree.
        n_components: Number of connected components.
        largest_component: Size of the largest component.
        average_clustering: Mean local clustering coefficient.
    """

    n_nodes: int
    n_edges: int
    density: float
    mean_degree: float
    max_degree: int
    n_components: int
    largest_component: int
    average_clustering: float


def degree_distribution(network: ClimateNetwork) -> dict[int, int]:
    """Histogram ``degree -> node count``."""
    degrees = network.degrees()
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def connected_components(network: ClimateNetwork) -> list[set[str]]:
    """Connected components as sets of node names, largest first."""
    graph = network.to_networkx()
    components = [set(c) for c in nx.connected_components(graph)]
    return sorted(components, key=len, reverse=True)


def average_clustering(network: ClimateNetwork) -> float:
    """Mean local clustering coefficient (0 for an empty network)."""
    graph = network.to_networkx()
    if graph.number_of_nodes() == 0:
        return 0.0
    return float(nx.average_clustering(graph))


def hub_nodes(network: ClimateNetwork, top_k: int = 10) -> list[tuple[str, int]]:
    """The ``top_k`` highest-degree nodes as ``(name, degree)`` pairs."""
    degrees = network.degrees()
    order = np.argsort(-degrees, kind="stable")[:top_k]
    return [(network.names[i], int(degrees[i])) for i in order]


def summarize_topology(network: ClimateNetwork) -> TopologySummary:
    """Compute the full :class:`TopologySummary` of a network."""
    n = network.n_nodes
    edges = network.n_edges
    degrees = network.degrees()
    components = connected_components(network)
    possible = n * (n - 1) / 2
    return TopologySummary(
        n_nodes=n,
        n_edges=edges,
        density=edges / possible if possible else 0.0,
        mean_degree=float(degrees.mean()) if n else 0.0,
        max_degree=int(degrees.max()) if n else 0,
        n_components=len(components),
        largest_component=len(components[0]) if components else 0,
        average_clustering=average_clustering(network),
    )
