"""Network dynamics over time (the "blinking links" line of analysis).

Climate studies track how network structure evolves as the query window
slides: links that flicker on and off around events like El Niño carry
signal (Gozolchiani et al., cited in §1). These helpers consume the snapshot
history produced by :class:`~repro.streams.ingestion.StreamIngestor` (or any
sequence of :class:`~repro.core.network.ClimateNetwork`) and quantify
stability and churn.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.network import ClimateNetwork
from repro.exceptions import DataError

__all__ = [
    "EdgeDynamics",
    "edge_presence",
    "edge_stability",
    "churn_series",
    "blinking_links",
    "summarize_dynamics",
]


@dataclass(frozen=True)
class EdgeDynamics:
    """Aggregate dynamics of a network sequence.

    Attributes:
        n_snapshots: Number of snapshots analyzed.
        mean_edges: Mean edge count per snapshot.
        mean_churn: Mean number of edge changes between snapshots.
        stable_edges: Edges present in every snapshot.
        blinking_edges: Edges that both appeared and disappeared at least
            once across the sequence.
    """

    n_snapshots: int
    mean_edges: float
    mean_churn: float
    stable_edges: frozenset[tuple[str, str]]
    blinking_edges: frozenset[tuple[str, str]]


def _edge_sets(networks: list[ClimateNetwork]) -> list[set[tuple[str, str]]]:
    if not networks:
        raise DataError("need at least one network snapshot")
    names = networks[0].names
    for network in networks[1:]:
        if network.names != names:
            raise DataError("snapshots must share an identical node set")
    return [network.edge_set() for network in networks]


def edge_presence(networks: list[ClimateNetwork]) -> Counter:
    """Count, per edge, the number of snapshots it appears in."""
    counts: Counter = Counter()
    for edges in _edge_sets(networks):
        counts.update(edges)
    return counts


def edge_stability(networks: list[ClimateNetwork]) -> dict[tuple[str, str], float]:
    """Fraction of snapshots each ever-present edge appears in."""
    total = len(networks)
    return {
        edge: count / total for edge, count in edge_presence(networks).items()
    }


def churn_series(networks: list[ClimateNetwork]) -> list[int]:
    """Edge changes (appearances + disappearances) between snapshots."""
    edge_sets = _edge_sets(networks)
    return [
        len(edge_sets[i] ^ edge_sets[i - 1]) for i in range(1, len(edge_sets))
    ]


def blinking_links(
    networks: list[ClimateNetwork],
) -> frozenset[tuple[str, str]]:
    """Edges that toggled state at least twice across the sequence.

    A blinking link is present in some snapshot, absent in a later one, and
    present again later (or the mirror pattern) — i.e. its presence sequence
    changes value at least twice.
    """
    edge_sets = _edge_sets(networks)
    all_edges = set().union(*edge_sets)
    blinking = set()
    for edge in all_edges:
        flips = sum(
            (edge in edge_sets[i]) != (edge in edge_sets[i - 1])
            for i in range(1, len(edge_sets))
        )
        if flips >= 2:
            blinking.add(edge)
    return frozenset(blinking)


def summarize_dynamics(networks: list[ClimateNetwork]) -> EdgeDynamics:
    """Compute the full :class:`EdgeDynamics` of a snapshot sequence."""
    edge_sets = _edge_sets(networks)
    churn = churn_series(networks)
    stable = (
        frozenset(set.intersection(*edge_sets)) if edge_sets else frozenset()
    )
    return EdgeDynamics(
        n_snapshots=len(networks),
        mean_edges=sum(len(e) for e in edge_sets) / len(edge_sets),
        mean_churn=sum(churn) / len(churn) if churn else 0.0,
        stable_edges=stable,
        blinking_edges=blinking_links(networks),
    )
