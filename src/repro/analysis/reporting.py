"""Plain-text reports and ASCII maps for terminal-first analysis.

The reproduction environment has no plotting stack, and the paper's Fig. 1
routes networks to external visualization tools anyway. For quick looks from
the CLI and examples, this module renders:

* :func:`ascii_degree_map` — the degree field binned onto a lat/lon character
  grid, intensity-coded (the terminal version of a hub map).
* :func:`topology_report` — a multi-line summary of a network's topology.
* :func:`dynamics_report` — a summary of a snapshot sequence including a
  sparkline of edge counts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dynamics import summarize_dynamics
from repro.analysis.topology import hub_nodes, summarize_topology
from repro.core.network import ClimateNetwork
from repro.exceptions import DataError

__all__ = ["ascii_degree_map", "topology_report", "dynamics_report"]

_INTENSITY = " .:-=+*#%@"


def ascii_degree_map(
    network: ClimateNetwork, width: int = 60, height: int = 20
) -> str:
    """Render the degree field as an intensity-coded character grid.

    Each cell shows the maximum degree of the nodes falling into it, scaled
    to the ``' .:-=+*#%@'`` ramp; empty cells are blank. North is up.

    Args:
        network: A network with node coordinates.
        width: Grid columns.
        height: Grid rows.

    Returns:
        The rendered multi-line string (no trailing newline).
    """
    if not network.coordinates:
        raise DataError("network carries no node coordinates")
    if width < 2 or height < 2:
        raise DataError("map must be at least 2x2")
    lats = np.array([network.coordinates[n][0] for n in network.names])
    lons = np.array([network.coordinates[n][1] for n in network.names])
    degrees = network.degrees().astype(np.float64)

    lat_span = max(lats.max() - lats.min(), 1e-9)
    lon_span = max(lons.max() - lons.min(), 1e-9)
    rows = ((lats.max() - lats) / lat_span * (height - 1)).astype(int)
    cols = ((lons - lons.min()) / lon_span * (width - 1)).astype(int)

    grid = np.full((height, width), -1.0)
    for r, c, d in zip(rows, cols, degrees):
        grid[r, c] = max(grid[r, c], d)

    max_degree = max(degrees.max(), 1.0)
    lines = []
    for r in range(height):
        chars = []
        for c in range(width):
            if grid[r, c] < 0:
                chars.append(" ")
            else:
                level = int(grid[r, c] / max_degree * (len(_INTENSITY) - 1))
                chars.append(_INTENSITY[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def topology_report(network: ClimateNetwork, top_hubs: int = 5) -> str:
    """Multi-line topology summary of one network."""
    summary = summarize_topology(network)
    lines = [
        f"nodes              {summary.n_nodes}",
        f"edges              {summary.n_edges}",
        f"density            {summary.density:.4f}",
        f"mean degree        {summary.mean_degree:.2f}",
        f"max degree         {summary.max_degree}",
        f"components         {summary.n_components}",
        f"largest component  {summary.largest_component}",
        f"avg clustering     {summary.average_clustering:.3f}",
    ]
    hubs = hub_nodes(network, top_k=top_hubs)
    if hubs and hubs[0][1] > 0:
        lines.append("hubs               " + ", ".join(
            f"{name}({degree})" for name, degree in hubs if degree > 0
        ))
    return "\n".join(lines)


def dynamics_report(networks: list[ClimateNetwork]) -> str:
    """Summary of a snapshot sequence with an edge-count sparkline."""
    dynamics = summarize_dynamics(networks)
    counts = np.array([net.n_edges for net in networks], dtype=np.float64)
    top = max(counts.max(), 1.0)
    ramp = "▁▂▃▄▅▆▇█"
    spark = "".join(
        ramp[int(c / top * (len(ramp) - 1))] for c in counts
    )
    return "\n".join(
        [
            f"snapshots       {dynamics.n_snapshots}",
            f"edges           {spark}  (max {int(counts.max())})",
            f"mean edges      {dynamics.mean_edges:.1f}",
            f"mean churn      {dynamics.mean_churn:.1f}",
            f"stable edges    {len(dynamics.stable_edges)}",
            f"blinking links  {len(dynamics.blinking_edges)}",
        ]
    )
