"""Community detection on climate networks (§1: a downstream task the
complete correlation matrix enables).

Communities in a climate network group locations whose anomaly series move
together — e.g. ocean basins or synoptic regions. Thin wrappers over
``networkx`` community algorithms, returning name-keyed partitions plus a
modularity score so examples and tests can assert quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.network import ClimateNetwork
from repro.exceptions import DataError

__all__ = ["CommunityPartition", "detect_communities", "partition_modularity"]


@dataclass(frozen=True)
class CommunityPartition:
    """A node partition with its modularity.

    Attributes:
        communities: List of node-name sets, largest first.
        modularity: Newman modularity of the partition on the source graph.
        method: Algorithm that produced it.
    """

    communities: list[frozenset[str]]
    modularity: float
    method: str

    @property
    def n_communities(self) -> int:
        """Number of communities in the partition."""
        return len(self.communities)

    def community_of(self, name: str) -> int:
        """Index of the community containing ``name`` (-1 when absent)."""
        for i, community in enumerate(self.communities):
            if name in community:
                return i
        return -1


def detect_communities(
    network: ClimateNetwork, method: str = "greedy_modularity", seed: int = 0
) -> CommunityPartition:
    """Partition a climate network into communities.

    Args:
        network: The thresholded climate network.
        method: ``"greedy_modularity"`` (Clauset-Newman-Moore) or
            ``"label_propagation"``.
        seed: Seed for stochastic methods.

    Returns:
        The detected :class:`CommunityPartition` (singletons for isolated
        nodes).
    """
    graph = network.to_networkx()
    if method == "greedy_modularity":
        raw = nx.community.greedy_modularity_communities(graph, weight="weight")
    elif method == "label_propagation":
        raw = nx.community.asyn_lpa_communities(graph, weight="weight", seed=seed)
    else:
        raise DataError(f"unknown community method {method!r}")
    communities = sorted((frozenset(c) for c in raw), key=len, reverse=True)
    modularity = partition_modularity(network, communities)
    return CommunityPartition(
        communities=communities, modularity=modularity, method=method
    )


def partition_modularity(
    network: ClimateNetwork, communities: list[frozenset[str]]
) -> float:
    """Newman modularity of a partition on the network's graph.

    Returns 0.0 for edgeless networks (modularity is undefined there).
    """
    graph = network.to_networkx()
    if graph.number_of_edges() == 0:
        return 0.0
    return float(nx.community.modularity(graph, communities, weight="weight"))
