"""Network science on constructed climate networks."""

from repro.analysis.accuracy import (
    NetworkComparison,
    compare_matrices,
    compare_networks,
)
from repro.analysis.communities import (
    CommunityPartition,
    detect_communities,
    partition_modularity,
)
from repro.analysis.export import (
    read_adjacency_npz,
    write_adjacency_npz,
    write_edge_csv,
    write_graphml,
    write_matrix_csv,
)
from repro.analysis.reporting import (
    ascii_degree_map,
    dynamics_report,
    topology_report,
)
from repro.analysis.geography import (
    correlation_vs_distance,
    degree_field,
    edge_lengths,
    teleconnection_edges,
)
from repro.analysis.dynamics import (
    EdgeDynamics,
    blinking_links,
    churn_series,
    edge_presence,
    edge_stability,
    summarize_dynamics,
)
from repro.analysis.topology import (
    TopologySummary,
    average_clustering,
    connected_components,
    degree_distribution,
    hub_nodes,
    summarize_topology,
)

__all__ = [
    "ascii_degree_map",
    "dynamics_report",
    "topology_report",
    "read_adjacency_npz",
    "write_adjacency_npz",
    "write_edge_csv",
    "write_graphml",
    "write_matrix_csv",
    "correlation_vs_distance",
    "degree_field",
    "edge_lengths",
    "teleconnection_edges",
    "NetworkComparison",
    "compare_matrices",
    "compare_networks",
    "CommunityPartition",
    "detect_communities",
    "partition_modularity",
    "EdgeDynamics",
    "blinking_links",
    "churn_series",
    "edge_presence",
    "edge_stability",
    "summarize_dynamics",
    "TopologySummary",
    "average_clustering",
    "connected_components",
    "degree_distribution",
    "hub_nodes",
    "summarize_topology",
]
