"""Gridded dataset files (NetCDF substitute for Berkeley Earth data).

The paper's scalability experiments read Berkeley Earth's 1°x1° NetCDF
gridded temperatures. NetCDF libraries are not installed in this offline
environment, so we persist gridded datasets as ``.npz`` archives with the
same logical schema a climate NetCDF carries: coordinate axes, a land mask,
and a ``(lat, lon, time)`` value cube. Loading flattens land nodes into the
synchronized ``(n, L)`` matrix TSUBASA ingests, exactly as the paper "uses
the land time-series" of the grid.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.grid import grid_node_name
from repro.data.synthetic import StationDataset
from repro.exceptions import DataError

__all__ = ["save_gridded_npz", "load_gridded_npz"]

_SCHEMA_KEYS = ("lat", "lon", "land_mask", "values")


def save_gridded_npz(
    path: str | Path,
    lat_axis: np.ndarray,
    lon_axis: np.ndarray,
    cube: np.ndarray,
    land_mask: np.ndarray | None = None,
) -> None:
    """Persist a gridded dataset in the NetCDF-like ``.npz`` schema.

    Args:
        path: Destination ``.npz`` file.
        lat_axis: Grid latitudes, shape ``(n_lat,)``.
        lon_axis: Grid longitudes, shape ``(n_lon,)``.
        cube: Value cube, shape ``(n_lat, n_lon, n_time)``.
        land_mask: Boolean ``(n_lat, n_lon)``; ``True`` marks land nodes kept
            at load time. Defaults to all-land.
    """
    lat_axis = np.asarray(lat_axis, dtype=np.float64)
    lon_axis = np.asarray(lon_axis, dtype=np.float64)
    cube = np.asarray(cube, dtype=np.float64)
    if cube.shape[:2] != (lat_axis.size, lon_axis.size):
        raise DataError(
            f"cube shape {cube.shape} does not match axes "
            f"({lat_axis.size}, {lon_axis.size})"
        )
    if land_mask is None:
        land_mask = np.ones((lat_axis.size, lon_axis.size), dtype=bool)
    land_mask = np.asarray(land_mask, dtype=bool)
    if land_mask.shape != cube.shape[:2]:
        raise DataError(
            f"land mask shape {land_mask.shape} does not match grid "
            f"{cube.shape[:2]}"
        )
    np.savez_compressed(
        path, lat=lat_axis, lon=lon_axis, land_mask=land_mask, values=cube
    )


def load_gridded_npz(path: str | Path) -> StationDataset:
    """Load a gridded ``.npz`` archive into a flattened land-node dataset.

    Args:
        path: Source ``.npz`` in the :func:`save_gridded_npz` schema.

    Returns:
        A :class:`StationDataset` with one series per land grid node, daily
        resolution, named by grid coordinates.
    """
    with np.load(path) as archive:
        missing = [key for key in _SCHEMA_KEYS if key not in archive]
        if missing:
            raise DataError(f"{path}: missing archive keys {missing}")
        lat_axis = archive["lat"]
        lon_axis = archive["lon"]
        land_mask = archive["land_mask"].astype(bool)
        cube = archive["values"]

    if cube.shape[:2] != (lat_axis.size, lon_axis.size):
        raise DataError(f"{path}: cube shape {cube.shape} does not match axes")
    lat_grid, lon_grid = np.meshgrid(lat_axis, lon_axis, indexing="ij")
    rows = lat_grid[land_mask]
    cols = lon_grid[land_mask]
    values = cube[land_mask]
    if values.size == 0:
        raise DataError(f"{path}: land mask selects no nodes")
    names = [grid_node_name(float(a), float(o)) for a, o in zip(rows, cols)]
    return StationDataset(
        names=names,
        values=np.ascontiguousarray(values),
        lats=rows.astype(np.float64),
        lons=cols.astype(np.float64),
        resolution_hours=24.0,
    )
