"""Geographic grid utilities for climate datasets.

Climate networks label nodes with geographic locations (§2.1: gridded data at
e.g. 2.5° x 2.5° resolution, or in-situ stations). This module provides the
coordinate plumbing shared by the synthetic generators and the file loaders:
regular lat/lon grids, great-circle distances, and stable node naming.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "EARTH_RADIUS_KM",
    "haversine_km",
    "regular_grid",
    "grid_node_name",
    "station_node_name",
]

EARTH_RADIUS_KM = 6371.0


def haversine_km(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Great-circle distance in kilometers (broadcasting over inputs).

    Args:
        lat1: Latitude(s) of the first point(s), degrees.
        lon1: Longitude(s) of the first point(s), degrees.
        lat2: Latitude(s) of the second point(s), degrees.
        lon2: Longitude(s) of the second point(s), degrees.

    Returns:
        Distances in kilometers, broadcast over the inputs.
    """
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lon2) - np.asarray(lon1))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def regular_grid(
    lat_min: float,
    lat_max: float,
    lon_min: float,
    lon_max: float,
    resolution: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Flattened node coordinates of a regular lat/lon grid.

    Args:
        lat_min: Southern edge (degrees).
        lat_max: Northern edge.
        lon_min: Western edge.
        lon_max: Eastern edge.
        resolution: Grid spacing in degrees (e.g. 1.0 for Berkeley Earth).

    Returns:
        ``(lats, lons)`` flat arrays, one entry per grid node, scanning
        latitude-major.
    """
    if resolution <= 0.0:
        raise DataError(f"grid resolution must be positive, got {resolution}")
    if lat_max < lat_min or lon_max < lon_min:
        raise DataError("grid bounds are inverted")
    lat_axis = np.arange(lat_min, lat_max + 1e-9, resolution)
    lon_axis = np.arange(lon_min, lon_max + 1e-9, resolution)
    lats, lons = np.meshgrid(lat_axis, lon_axis, indexing="ij")
    return lats.ravel(), lons.ravel()


def grid_node_name(lat: float, lon: float) -> str:
    """Stable identifier for a grid node, e.g. ``g+41.00-087.50``."""
    return f"g{lat:+07.2f}{lon:+08.2f}"


def station_node_name(index: int) -> str:
    """Stable identifier for a station node, e.g. ``stn042``."""
    return f"stn{index:03d}"
