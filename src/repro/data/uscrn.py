"""NOAA USCRN hourly file support (the paper's "NCEA" dataset format).

The paper's in-memory experiments use NOAA USCRN hourly products
(``hourly02``): one whitespace-delimited text file per station per year, one
row per hour, with the station's temperature in a fixed column and sentinel
values for missing data. With no network access we cannot fetch the real
files, so this module provides both directions:

* :func:`write_uscrn_file` — serialize a series into the same row layout
  (used by tests and by :func:`repro.data.synthetic` users who want on-disk
  fixtures), and
* :func:`read_uscrn_file` / :func:`load_uscrn_directory` — parse that layout
  back, apply the sentinel handling and gap interpolation of §2.1 (missing
  values are interpolated onto the fixed time resolution), and assemble the
  synchronized matrix TSUBASA ingests.

The layout mirrors the real product's leading columns: WBAN id, UTC date
``YYYYMMDD``, UTC time ``HHMM``, then the air-temperature value. Sentinel
``-9999.0`` marks missing observations, as in the real files.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.synthetic import StationDataset
from repro.exceptions import DataError

__all__ = [
    "MISSING_SENTINEL",
    "write_uscrn_file",
    "read_uscrn_file",
    "load_uscrn_directory",
    "interpolate_missing",
]

MISSING_SENTINEL = -9999.0


def interpolate_missing(values: np.ndarray) -> np.ndarray:
    """Linearly interpolate NaN gaps (§2.1 missing-value handling).

    Interior gaps are linearly interpolated from their finite neighbors;
    leading/trailing gaps are filled with the nearest finite value. An
    all-NaN series raises :class:`~repro.exceptions.DataError`.
    """
    arr = np.asarray(values, dtype=np.float64).copy()
    finite = np.isfinite(arr)
    if not finite.any():
        raise DataError("series has no finite values to interpolate from")
    if finite.all():
        return arr
    idx = np.arange(arr.size)
    arr[~finite] = np.interp(idx[~finite], idx[finite], arr[finite])
    return arr


def write_uscrn_file(
    path: str | Path,
    values: np.ndarray,
    station_id: int,
    start_date: tuple[int, int, int] = (2020, 1, 1),
) -> None:
    """Write a series in the USCRN hourly row layout.

    Args:
        path: Destination file.
        values: 1-D hourly values; NaNs are written as the missing sentinel.
        station_id: Numeric WBAN-style identifier for column 1.
        start_date: ``(year, month, day)`` of the first observation (UTC).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DataError(f"expected a 1-D series, got shape {arr.shape}")
    year, month, day = start_date
    base = np.datetime64(f"{year:04d}-{month:02d}-{day:02d}T00:00")
    stamps = base + np.arange(arr.size).astype("timedelta64[h]")
    with open(path, "w", encoding="ascii") as handle:
        for stamp, value in zip(stamps, arr):
            text = str(stamp)  # YYYY-MM-DDTHH:MM
            date = text[:10].replace("-", "")
            time = text[11:13] + text[14:16]
            out = MISSING_SENTINEL if not np.isfinite(value) else value
            handle.write(f"{station_id:5d} {date} {time} {out:9.1f}\n")


def read_uscrn_file(path: str | Path, interpolate: bool = True) -> np.ndarray:
    """Parse one USCRN hourly file into an hourly series.

    Args:
        path: Source file in the :func:`write_uscrn_file` layout.
        interpolate: Replace sentinel gaps via :func:`interpolate_missing`;
            with ``False`` gaps come back as NaN.

    Returns:
        1-D float array of hourly values in file order.
    """
    rows: list[float] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, start=1):
            parts = line.split()
            if not parts:
                continue
            if len(parts) < 4:
                raise DataError(f"{path}: malformed row at line {line_no}")
            try:
                value = float(parts[3])
            except ValueError as exc:
                raise DataError(
                    f"{path}: non-numeric value at line {line_no}"
                ) from exc
            rows.append(np.nan if value == MISSING_SENTINEL else value)
    if not rows:
        raise DataError(f"{path}: file contains no observations")
    series = np.asarray(rows, dtype=np.float64)
    return interpolate_missing(series) if interpolate else series


def load_uscrn_directory(
    directory: str | Path, interpolate: bool = True
) -> StationDataset:
    """Load every ``*.txt`` station file in a directory into one dataset.

    Series are truncated to the shortest station so the matrix is
    synchronized (§2.1 assumes aligned series). Stations are ordered by
    filename for determinism; coordinates are not present in the hourly files
    and are set to NaN.

    Args:
        directory: Directory of USCRN-layout files.
        interpolate: Interpolate sentinel gaps per station.

    Returns:
        A synchronized :class:`StationDataset`.
    """
    folder = Path(directory)
    files = sorted(folder.glob("*.txt"))
    if not files:
        raise DataError(f"no .txt station files found in {folder}")
    series = [read_uscrn_file(f, interpolate=interpolate) for f in files]
    length = min(s.size for s in series)
    values = np.stack([s[:length] for s in series])
    names = [f.stem for f in files]
    nan = np.full(len(files), np.nan)
    return StationDataset(
        names=names, values=values, lats=nan.copy(), lons=nan.copy(),
        resolution_hours=1.0,
    )
