"""Climate indices: regional aggregate series from gridded datasets.

Climate-network studies routinely relate network structure to *indices* —
area-averaged anomaly series over named boxes (Niño-3.4 is the canonical
example the paper's El Niño citations build on). An index is itself a
time-series synchronized with the grid, so it can join the collection and be
sketched, correlated, and networked like any node.

* :class:`RegionBox` — a lat/lon rectangle.
* :func:`box_index` — the area-weighted mean series over a box (weights
  ``cos(lat)`` approximate the shrinking area of grid cells toward the
  poles, the standard convention).
* :func:`attach_index` — append an index as an extra series to a dataset, so
  the engines treat it as one more node.
* :func:`index_correlations` — correlation of an index against every node
  over a query window (the "teleconnection map" of the index).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.naive import baseline_correlation_matrix
from repro.core.segmentation import QueryWindow
from repro.data.synthetic import StationDataset
from repro.exceptions import DataError

__all__ = ["RegionBox", "box_index", "attach_index", "index_correlations"]


@dataclass(frozen=True)
class RegionBox:
    """A latitude/longitude rectangle.

    Attributes:
        lat_min: Southern edge (degrees).
        lat_max: Northern edge.
        lon_min: Western edge.
        lon_max: Eastern edge.
        name: Label for the derived index series.
    """

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float
    name: str = "index"

    def __post_init__(self) -> None:
        if self.lat_max < self.lat_min or self.lon_max < self.lon_min:
            raise DataError("region box bounds are inverted")

    def contains(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Boolean mask of nodes inside the box (edges inclusive)."""
        lats = np.asarray(lats)
        lons = np.asarray(lons)
        return (
            (lats >= self.lat_min)
            & (lats <= self.lat_max)
            & (lons >= self.lon_min)
            & (lons <= self.lon_max)
        )


def box_index(dataset: StationDataset, box: RegionBox) -> np.ndarray:
    """Area-weighted mean series over the nodes inside ``box``.

    Args:
        dataset: A geo-labeled dataset.
        box: The region to aggregate.

    Returns:
        Length-``n_points`` index series.

    Raises:
        DataError: If no node falls inside the box.
    """
    mask = box.contains(dataset.lats, dataset.lons)
    if not mask.any():
        raise DataError(f"no nodes inside region {box.name!r}")
    weights = np.cos(np.radians(dataset.lats[mask]))
    weights = weights / weights.sum()
    return weights @ dataset.values[mask]


def attach_index(dataset: StationDataset, box: RegionBox) -> StationDataset:
    """Return a new dataset with the box index appended as an extra node.

    The index node's coordinates are the box center, so network analysis and
    maps place it geographically.
    """
    if box.name in dataset.names:
        raise DataError(f"dataset already has a series named {box.name!r}")
    series = box_index(dataset, box)
    return StationDataset(
        names=[*dataset.names, box.name],
        values=np.vstack([dataset.values, series]),
        lats=np.append(dataset.lats, (box.lat_min + box.lat_max) / 2.0),
        lons=np.append(dataset.lons, (box.lon_min + box.lon_max) / 2.0),
        resolution_hours=dataset.resolution_hours,
    )


def index_correlations(
    dataset: StationDataset,
    box: RegionBox,
    query: QueryWindow | tuple[int, int] | None = None,
) -> dict[str, float]:
    """Correlation of the box index against every node over a window.

    This is the per-index "teleconnection map": thresholding it gives the
    index's edges in the climate network.

    Args:
        dataset: A geo-labeled dataset.
        box: The index region.
        query: Optional ``(end, length)`` window; defaults to all points.

    Returns:
        ``name -> correlation`` for every node (nodes inside the box
        included; they correlate strongly by construction).
    """
    if query is None:
        window = slice(None)
    else:
        if not isinstance(query, QueryWindow):
            query = QueryWindow(end=query[0], length=query[1])
        if query.stop > dataset.n_points:
            raise DataError(
                f"query window ends at {query.end} but the dataset has "
                f"{dataset.n_points} points"
            )
        window = query.slice()
    series = box_index(dataset, box)[window]
    values = dataset.values[:, window]
    stacked = np.vstack([values, series])
    corr = baseline_correlation_matrix(stacked)[-1, :-1]
    return {name: float(c) for name, c in zip(dataset.names, corr)}
