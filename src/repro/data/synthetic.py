"""Synthetic climate data substrates.

The paper evaluates on two datasets we cannot download in this offline
environment (NOAA "NCEA" hourly station data; Berkeley Earth gridded daily
temperatures). These generators produce synthetic datasets of the same shape
and — crucially — the same *correlation structure* class: geographically
nearby series are strongly correlated, distant ones weakly, with seasonal and
diurnal cycles plus autocorrelated weather noise. Climate networks built on
them are therefore non-trivial at the paper's thresholds, which is what the
accuracy and efficiency experiments exercise (DESIGN.md records the
substitution).

Model: a low-rank spatial factor field plus local noise::

    x_i(t) = seasonal_i(t) + diurnal_i(t)
             + sum_k loading_k(site_i) * f_k(t) + eta_i(t)

where ``loading_k`` is a Gaussian bump around mode center ``k`` (so nearby
sites share factor exposure), ``f_k`` are independent AR(1) signals (large-
scale "weather systems"), and ``eta_i`` is site-local AR(1) noise. The
``anomaly=True`` option subtracts the deterministic climatology, mirroring
the anomaly series climate networks are defined on (§1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.grid import (
    grid_node_name,
    haversine_km,
    regular_grid,
    station_node_name,
)
from repro.exceptions import DataError

__all__ = [
    "StationDataset",
    "generate_station_dataset",
    "generate_gridded_dataset",
    "ar1_series",
]


@dataclass
class StationDataset:
    """A collection of synchronized geo-labeled series.

    Attributes:
        names: Node identifiers, one per row of ``values``.
        values: ``(n, L)`` float matrix of observations.
        lats: Node latitudes (degrees), shape ``(n,)``.
        lons: Node longitudes (degrees), shape ``(n,)``.
        resolution_hours: Time resolution ``gamma`` between observations.
    """

    names: list[str]
    values: np.ndarray
    lats: np.ndarray
    lons: np.ndarray
    resolution_hours: float

    def __post_init__(self) -> None:
        n = len(self.names)
        if self.values.ndim != 2 or self.values.shape[0] != n:
            raise DataError(
                f"values shape {self.values.shape} does not match {n} names"
            )
        if self.lats.shape != (n,) or self.lons.shape != (n,):
            raise DataError("lats/lons must have one entry per series")

    @property
    def n_series(self) -> int:
        """Number of series (network nodes)."""
        return len(self.names)

    @property
    def n_points(self) -> int:
        """Number of observations per series."""
        return self.values.shape[1]

    @property
    def coordinates(self) -> dict[str, tuple[float, float]]:
        """``name -> (lat, lon)`` mapping for network construction."""
        return {
            name: (float(lat), float(lon))
            for name, lat, lon in zip(self.names, self.lats, self.lons)
        }

    def subset(self, n_series: int) -> "StationDataset":
        """First ``n_series`` series (used by the scalability sweeps)."""
        if not 1 <= n_series <= self.n_series:
            raise DataError(
                f"cannot take {n_series} of {self.n_series} series"
            )
        return StationDataset(
            names=self.names[:n_series],
            values=self.values[:n_series],
            lats=self.lats[:n_series],
            lons=self.lons[:n_series],
            resolution_hours=self.resolution_hours,
        )


def ar1_series(
    rng: np.random.Generator, n: int, length: int, phi: float, scale: float
) -> np.ndarray:
    """``n`` independent AR(1) processes of the given length.

    Args:
        rng: Source of randomness.
        n: Number of processes.
        length: Points per process.
        phi: AR(1) coefficient in ``[0, 1)``.
        scale: Stationary standard deviation of each process.

    Returns:
        ``(n, length)`` matrix of stationary AR(1) draws.
    """
    if not 0.0 <= phi < 1.0:
        raise DataError(f"AR(1) coefficient must be in [0, 1), got {phi}")
    innovation_scale = scale * np.sqrt(1.0 - phi * phi)
    noise = rng.normal(0.0, innovation_scale, size=(n, length))
    out = np.empty((n, length))
    out[:, 0] = rng.normal(0.0, scale, size=n)
    for t in range(1, length):
        out[:, t] = phi * out[:, t - 1] + noise[:, t]
    return out


def _factor_field(
    rng: np.random.Generator,
    lats: np.ndarray,
    lons: np.ndarray,
    length: int,
    n_modes: int,
    mode_radius_km: float,
    mode_scale: float,
    phi: float,
) -> np.ndarray:
    """Low-rank spatially correlated field: Gaussian loadings x AR(1) factors."""
    n = lats.size
    centers = rng.integers(0, n, size=n_modes)
    loadings = np.empty((n, n_modes))
    for k, center in enumerate(centers):
        dist = haversine_km(lats, lons, lats[center], lons[center])
        loadings[:, k] = np.exp(-0.5 * (dist / mode_radius_km) ** 2)
    factors = ar1_series(rng, n_modes, length, phi=phi, scale=mode_scale)
    return loadings @ factors


def _seasonal_cycle(
    lats: np.ndarray, length: int, resolution_hours: float, amplitude: float
) -> np.ndarray:
    """Annual cycle, amplitude growing with latitude, phase-aligned."""
    hours = np.arange(length) * resolution_hours
    annual = np.sin(2.0 * np.pi * hours / (365.0 * 24.0))
    lat_gain = 0.5 + np.abs(lats) / 90.0
    return amplitude * np.outer(lat_gain, annual)


def _diurnal_cycle(
    lons: np.ndarray, length: int, resolution_hours: float, amplitude: float
) -> np.ndarray:
    """Daily cycle with longitude-dependent phase (local solar time)."""
    hours = np.arange(length) * resolution_hours
    phase = (np.asarray(lons) / 360.0) * 24.0
    arg = 2.0 * np.pi * (hours[None, :] + phase[:, None]) / 24.0
    return amplitude * np.sin(arg)


def generate_station_dataset(
    n_stations: int = 157,
    n_points: int = 8760,
    seed: int = 0,
    resolution_hours: float = 1.0,
    anomaly: bool = True,
    n_modes: int | None = None,
    mode_radius_km: float = 900.0,
    noise_scale: float = 1.0,
) -> StationDataset:
    """NCEA-like dataset: US weather stations with hourly observations.

    Defaults match the paper's in-memory dataset shape (157 stations, one
    year of hourly data = 8,760 points).

    Args:
        n_stations: Number of stations scattered over a CONUS-like box.
        n_points: Observations per station.
        seed: Deterministic seed.
        resolution_hours: Time between observations.
        anomaly: Subtract the deterministic climatology (seasonal + diurnal),
            producing the anomaly series climate networks are built on. With
            ``False`` the cycles stay in, yielding strongly "cooperative"
            series.
        n_modes: Number of large-scale weather modes (default ``max(4, n/12)``).
        mode_radius_km: Spatial correlation length of the modes.
        noise_scale: Standard deviation of station-local noise.

    Returns:
        A :class:`StationDataset` with deterministic contents for a seed.
    """
    if n_stations <= 0 or n_points <= 0:
        raise DataError("n_stations and n_points must be positive")
    rng = np.random.default_rng(seed)
    lats = rng.uniform(25.0, 49.0, size=n_stations)
    lons = rng.uniform(-124.0, -67.0, size=n_stations)
    if n_modes is None:
        n_modes = max(4, n_stations // 12)

    field = _factor_field(
        rng, lats, lons, n_points,
        n_modes=n_modes, mode_radius_km=mode_radius_km,
        mode_scale=1.5, phi=0.98,
    )
    noise = ar1_series(rng, n_stations, n_points, phi=0.6, scale=noise_scale)
    values = field + noise
    if not anomaly:
        values = (
            values
            + _seasonal_cycle(lats, n_points, resolution_hours, amplitude=10.0)
            + _diurnal_cycle(lons, n_points, resolution_hours, amplitude=4.0)
            + 15.0
        )
    names = [station_node_name(i) for i in range(n_stations)]
    return StationDataset(
        names=names,
        values=values,
        lats=lats,
        lons=lons,
        resolution_hours=resolution_hours,
    )


def generate_gridded_dataset(
    lat_min: float = 25.0,
    lat_max: float = 49.0,
    lon_min: float = -124.0,
    lon_max: float = -67.0,
    resolution_deg: float = 2.0,
    n_points: int = 3652,
    seed: int = 0,
    anomaly: bool = True,
    mode_radius_km: float = 1200.0,
) -> StationDataset:
    """Berkeley-Earth-like dataset: a regular lat/lon grid of daily series.

    Defaults produce a CONUS grid with 3,652 daily points (10 years), the
    paper's per-node length. The paper's full grid has 18,638 land nodes;
    scalability sweeps call :meth:`StationDataset.subset` on a grid sized for
    the host.

    Args:
        lat_min: Southern edge of the grid (degrees).
        lat_max: Northern edge.
        lon_min: Western edge.
        lon_max: Eastern edge.
        resolution_deg: Grid spacing (1.0 matches Berkeley Earth).
        n_points: Observations per node (daily resolution).
        seed: Deterministic seed.
        anomaly: Subtract the deterministic climatology.
        mode_radius_km: Spatial correlation length of weather modes.

    Returns:
        A :class:`StationDataset` over the flattened grid.
    """
    lats, lons = regular_grid(lat_min, lat_max, lon_min, lon_max, resolution_deg)
    rng = np.random.default_rng(seed)
    n = lats.size
    n_modes = max(6, n // 40)
    field = _factor_field(
        rng, lats, lons, n_points,
        n_modes=n_modes, mode_radius_km=mode_radius_km,
        mode_scale=1.5, phi=0.95,
    )
    noise = ar1_series(rng, n, n_points, phi=0.5, scale=1.0)
    values = field + noise
    if not anomaly:
        values = values + _seasonal_cycle(lats, n_points, 24.0, amplitude=12.0) + 10.0
    names = [grid_node_name(float(a), float(o)) for a, o in zip(lats, lons)]
    return StationDataset(
        names=names,
        values=values,
        lats=lats,
        lons=lons,
        resolution_hours=24.0,
    )
