"""Climate data substrates: synthetic generators and file-format loaders."""

from repro.data.grid import (
    EARTH_RADIUS_KM,
    grid_node_name,
    haversine_km,
    regular_grid,
    station_node_name,
)
from repro.data.gridded import load_gridded_npz, save_gridded_npz
from repro.data.indices import (
    RegionBox,
    attach_index,
    box_index,
    index_correlations,
)
from repro.data.synthetic import (
    StationDataset,
    ar1_series,
    generate_gridded_dataset,
    generate_station_dataset,
)
from repro.data.uscrn import (
    MISSING_SENTINEL,
    interpolate_missing,
    load_uscrn_directory,
    read_uscrn_file,
    write_uscrn_file,
)

__all__ = [
    "EARTH_RADIUS_KM",
    "grid_node_name",
    "haversine_km",
    "regular_grid",
    "station_node_name",
    "load_gridded_npz",
    "save_gridded_npz",
    "RegionBox",
    "attach_index",
    "box_index",
    "index_correlations",
    "StationDataset",
    "ar1_series",
    "generate_gridded_dataset",
    "generate_station_dataset",
    "MISSING_SENTINEL",
    "interpolate_missing",
    "load_uscrn_directory",
    "read_uscrn_file",
    "write_uscrn_file",
]
