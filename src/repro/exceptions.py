"""Exception hierarchy for the TSUBASA reproduction.

All library errors derive from :class:`TsubasaError` so callers can catch a
single base class at API boundaries while still distinguishing failure modes.
"""

from __future__ import annotations

__all__ = [
    "TsubasaError",
    "SegmentationError",
    "SketchError",
    "StorageError",
    "StreamError",
    "DataError",
    "ServiceError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "error_code_for",
]


class TsubasaError(Exception):
    """Base class for every error raised by this library."""


class SegmentationError(TsubasaError):
    """A basic-window plan or query window is invalid.

    Raised when a query window falls outside the sketched range, when window
    sizes are non-positive, or when a plan does not tile the series length.
    """


class SketchError(TsubasaError):
    """A sketch is missing, inconsistent, or incompatible with a query."""


class StorageError(TsubasaError):
    """A sketch store could not be read from or written to."""


class StreamError(TsubasaError):
    """A real-time ingestion operation is invalid.

    Examples: pushing batches after a stream was closed, ingesting values for
    an unknown series, or sliding a window state that was never initialized.
    """


class DataError(TsubasaError):
    """Input data is malformed (ragged series, NaNs where disallowed, ...)."""


class ServiceError(TsubasaError):
    """A query-service operation is invalid.

    Examples: submitting a spec to a :class:`~repro.api.service.TsubasaService`
    that was never started or already closed.
    """


class DeadlineExceeded(ServiceError):
    """A request's deadline expired before (or while) it was served.

    Carried end-to-end: a :class:`~repro.api.spec.QuerySpec` with
    ``deadline_ms`` set is shed by the service once the budget is spent,
    the server maps it to HTTP 504, and the remote client re-raises it.
    Deliberately **not retryable** — the caller's time budget is gone.
    """


class CircuitOpenError(ServiceError):
    """A client-side circuit breaker is open and the call failed fast.

    Raised by :class:`~repro.api.remote.TsubasaRemoteClient` without
    touching the network when recent calls against the endpoint failed;
    see :class:`~repro.api.resilience.CircuitBreaker`.
    """


#: TsubasaError subclass → stable failure code. The codes double as CLI
#: process exit codes and as the ``error.code`` field of wire-protocol error
#: envelopes, so a remote caller sees the same taxonomy a shell script does.
#: Order-independent: the most specific class in the exception's MRO wins.
_ERROR_CODES: dict[type[TsubasaError], int] = {
    TsubasaError: 1,
    SketchError: 2,
    DataError: 3,
    SegmentationError: 4,
    StorageError: 5,
    StreamError: 6,
    ServiceError: 7,
    DeadlineExceeded: 8,
    CircuitOpenError: 9,
}


def error_code_for(exc: TsubasaError) -> int:
    """The stable failure code for a library error (distinct per subclass)."""
    for klass in type(exc).__mro__:
        code = _ERROR_CODES.get(klass)
        if code is not None:
            return code
    return 1
