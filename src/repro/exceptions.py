"""Exception hierarchy for the TSUBASA reproduction.

All library errors derive from :class:`TsubasaError` so callers can catch a
single base class at API boundaries while still distinguishing failure modes.
"""

from __future__ import annotations

__all__ = [
    "TsubasaError",
    "SegmentationError",
    "SketchError",
    "StorageError",
    "StreamError",
    "DataError",
    "ServiceError",
]


class TsubasaError(Exception):
    """Base class for every error raised by this library."""


class SegmentationError(TsubasaError):
    """A basic-window plan or query window is invalid.

    Raised when a query window falls outside the sketched range, when window
    sizes are non-positive, or when a plan does not tile the series length.
    """


class SketchError(TsubasaError):
    """A sketch is missing, inconsistent, or incompatible with a query."""


class StorageError(TsubasaError):
    """A sketch store could not be read from or written to."""


class StreamError(TsubasaError):
    """A real-time ingestion operation is invalid.

    Examples: pushing batches after a stream was closed, ingesting values for
    an unknown series, or sliding a window state that was never initialized.
    """


class DataError(TsubasaError):
    """Input data is malformed (ragged series, NaNs where disallowed, ...)."""


class ServiceError(TsubasaError):
    """A query-service operation is invalid.

    Examples: submitting a spec to a :class:`~repro.api.service.TsubasaService`
    that was never started or already closed.
    """
