"""Exception hierarchy for the TSUBASA reproduction.

All library errors derive from :class:`TsubasaError` so callers can catch a
single base class at API boundaries while still distinguishing failure modes.
"""

from __future__ import annotations

__all__ = [
    "TsubasaError",
    "SegmentationError",
    "SketchError",
    "StorageError",
    "StreamError",
    "DataError",
    "ServiceError",
    "error_code_for",
]


class TsubasaError(Exception):
    """Base class for every error raised by this library."""


class SegmentationError(TsubasaError):
    """A basic-window plan or query window is invalid.

    Raised when a query window falls outside the sketched range, when window
    sizes are non-positive, or when a plan does not tile the series length.
    """


class SketchError(TsubasaError):
    """A sketch is missing, inconsistent, or incompatible with a query."""


class StorageError(TsubasaError):
    """A sketch store could not be read from or written to."""


class StreamError(TsubasaError):
    """A real-time ingestion operation is invalid.

    Examples: pushing batches after a stream was closed, ingesting values for
    an unknown series, or sliding a window state that was never initialized.
    """


class DataError(TsubasaError):
    """Input data is malformed (ragged series, NaNs where disallowed, ...)."""


class ServiceError(TsubasaError):
    """A query-service operation is invalid.

    Examples: submitting a spec to a :class:`~repro.api.service.TsubasaService`
    that was never started or already closed.
    """


#: TsubasaError subclass → stable failure code. The codes double as CLI
#: process exit codes and as the ``error.code`` field of wire-protocol error
#: envelopes, so a remote caller sees the same taxonomy a shell script does.
#: Order-independent: the most specific class in the exception's MRO wins.
_ERROR_CODES: dict[type[TsubasaError], int] = {
    TsubasaError: 1,
    SketchError: 2,
    DataError: 3,
    SegmentationError: 4,
    StorageError: 5,
    StreamError: 6,
    ServiceError: 7,
}


def error_code_for(exc: TsubasaError) -> int:
    """The stable failure code for a library error (distinct per subclass)."""
    for klass in type(exc).__mro__:
        code = _ERROR_CODES.get(klass)
        if code is not None:
            return code
    return 1
