"""Sketch providers: pluggable backends feeding the Lemma 1 kernels.

The paper's point (§3.4) is that the *sketch* — not raw data — is the
query-time substrate, and that it can live anywhere: in memory next to the
engine, in a database read lazily at query time, or nowhere at all (computed
block-by-block from raw data under a memory bound). A
:class:`SketchProvider` abstracts that choice behind one narrow interface —
per-window series statistics plus per-window covariance rows/chunks — so
every engine (:class:`~repro.core.exact.TsubasaHistorical`, the pruning
path, the parallel executor, real-time warm starts) runs unchanged against
any backend.

Three providers are shipped:

* :class:`InMemoryProvider` — wraps a fully materialized
  :class:`~repro.core.sketch.Sketch` (the paper's in-memory configuration).
* :class:`StoreProvider` — lazy window loading from any
  :class:`~repro.storage.base.SketchStore` with batched reads and an LRU
  window-record cache; queries never hold the full ``(ns, n, n)`` covariance
  tensor at once (the paper's disk-based configuration).
* :class:`ChunkedBuildProvider` — no precomputed sketch at all: window
  statistics are cheap and kept whole, per-window covariance matrices are
  built on demand in row blocks (reusing the parallel executor's
  :func:`~repro.parallel.executor.sketch_partition`) under a configurable
  memory bound, with an LRU of finished windows. Useful for large ``n``
  where the full tensor would not fit, and for streaming a sketch into a
  store without ever materializing it (:meth:`ChunkedBuildProvider.save_to`).
* :class:`MmapProvider` — zero-copy reads from an
  :class:`~repro.storage.mmap_store.MmapStore`: window statistics and
  covariance chunks are *slices of read-only memory-mapped arrays*, with no
  per-record deserialization and no copies for contiguous window ranges
  (the common aligned-query case). Cold queries skip the database entirely
  and read straight through the OS page cache. Stores carrying persisted
  ``prefix_*`` tables additionally answer contiguous ranges from two mapped
  prefix rows (:meth:`SketchProvider.prefix_matrix`), independent of the
  range length.
* :class:`PrefixProvider` — a wrapper over *any* of the above: contiguous
  aligned selections are answered in ``O(n^2)`` from prefix-aggregate
  tables (:mod:`repro.core.prefix`) — built lazily from one streaming pass
  over the wrapped backend, or adopted zero-copy from an
  :class:`~repro.storage.mmap_store.MmapStore`'s persisted tables — while
  fragmented or non-contiguous selections delegate to the wrapped provider
  unchanged.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.segmentation import BasicWindowPlan
from repro.core.sketch import Sketch
from repro.core.stats import series_window_stats
from repro.exceptions import DataError, SketchError, StorageError
from repro.storage.base import SketchStore, StoreMetadata, WindowRecord

if TYPE_CHECKING:
    from repro.storage.mmap_store import MmapStore

__all__ = [
    "SketchProvider",
    "InMemoryProvider",
    "StoreProvider",
    "ChunkedBuildProvider",
    "MmapProvider",
    "PrefixProvider",
]

_NO_RAW_MESSAGE = (
    "query window is not aligned to basic windows and no raw data "
    "is available to sketch the partial fragments"
)


class SketchProvider(abc.ABC):
    """Backend-agnostic access to a sketched series collection.

    The interface is exactly what the Lemma 1 kernels consume: per-window
    per-series statistics (small, ``O(n * ns)``) delivered whole, and the
    per-window covariance matrices (large, ``O(ns * n^2)``) delivered as
    row blocks or window chunks so backends can bound memory.
    """

    #: Short backend identifier used in query provenance and CLI output.
    backend_name = "custom"

    #: Whether concurrent reads from multiple threads are safe. True only
    #: for backends whose query path touches read-only state (in-memory
    #: sketches, mmap views); cache-bearing or connection-bearing backends
    #: must be driven from one thread at a time, and the query service
    #: enforces that.
    thread_safe_reads = False

    # -- collection metadata -------------------------------------------------

    @property
    @abc.abstractmethod
    def names(self) -> list[str]:
        """Series identifiers, in matrix order."""

    @property
    @abc.abstractmethod
    def window_size(self) -> int:
        """Basic window size ``B``."""

    @property
    @abc.abstractmethod
    def sizes(self) -> np.ndarray:
        """Per-window sizes ``B_j``, shape ``(n_windows,)``."""

    @property
    def n_series(self) -> int:
        """Number of sketched series."""
        return len(self.names)

    @property
    def n_windows(self) -> int:
        """Number of sketched basic windows."""
        return int(self.sizes.size)

    @property
    def length(self) -> int:
        """Total number of sketched data points per series."""
        return int(self.sizes.sum())

    @property
    def plan(self) -> BasicWindowPlan:
        """The basic-window segmentation plan implied by the metadata."""
        return BasicWindowPlan(length=self.length, window_size=self.window_size)

    @property
    def has_raw_data(self) -> bool:
        """Whether :meth:`fragment` can sketch raw head/tail fragments."""
        return False

    # -- statistics access ---------------------------------------------------

    @abc.abstractmethod
    def window_stats(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-series statistics of the selected windows.

        Args:
            indices: Basic window indices, in query order.

        Returns:
            ``(means, stds, sizes)`` of shapes ``(n, k)``, ``(n, k)``,
            ``(k,)`` for ``k = len(indices)``.
        """

    @abc.abstractmethod
    def iter_cov_chunks(
        self, indices: np.ndarray, chunk_windows: int
    ) -> Iterator[np.ndarray]:
        """Covariance matrices of the selected windows, chunked.

        Args:
            indices: Basic window indices, in query order.
            chunk_windows: Maximum windows per yielded chunk.

        Yields:
            Arrays of shape ``(k', n, n)`` concatenating, in ``indices``
            order, to the selection's full covariance tensor.
        """

    def iter_window_chunks(
        self, indices: np.ndarray, chunk_windows: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Statistics *and* covariances of the selected windows, chunked.

        The single-pass feed for
        :func:`~repro.core.lemma1.combine_matrix_chunked`: backends that pay
        per-record I/O (stores) override this to deliver each window record
        exactly once.

        Args:
            indices: Basic window indices, in query order.
            chunk_windows: Maximum windows per yielded chunk.

        Yields:
            ``(means, stds, sizes, covs)`` tuples of shapes ``(n, k')``,
            ``(n, k')``, ``(k',)``, ``(k', n, n)``, concatenating in
            ``indices`` order to the full selection.
        """
        indices = self._check_indices(indices)
        if chunk_windows <= 0:
            raise SketchError("chunk_windows must be positive")
        for start in range(0, indices.size, chunk_windows):
            chunk_idx = indices[start : start + chunk_windows]
            means, stds, sizes = self.window_stats(chunk_idx)
            yield means, stds, sizes, self.covs(chunk_idx)

    def covs(self, indices: np.ndarray) -> np.ndarray:
        """Full ``(k, n, n)`` covariance tensor of the selected windows."""
        chunks = list(self.iter_cov_chunks(indices, max(len(indices), 1)))
        if not chunks:
            return np.empty((0, self.n_series, self.n_series))
        return np.concatenate(chunks, axis=0)

    def cov_rows(self, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Row block of the selected windows' covariance matrices.

        Args:
            indices: Basic window indices, in query order.
            rows: Row (series) indices of the block.

        Returns:
            Array of shape ``(k, len(rows), n)``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        return self.covs(indices)[:, rows, :]

    def fragment(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Sketch a raw ``[start, stop)`` fragment (arbitrary-window support).

        Backends without raw data raise :class:`SketchError` — the paper's
        sketch-only deployment supports aligned queries only.
        """
        raise SketchError(_NO_RAW_MESSAGE)

    def prefetch(self, indices: np.ndarray) -> int:
        """Warm the backend for an upcoming read of ``indices``.

        Backends that pay per-record I/O (stores) override this to batch the
        reads into their cache ahead of time — the query service calls it
        once with the union of every queued request's windows, so requests
        that arrive together share one store round-trip. Backends with no
        read amplification (in-memory, mmap) keep the default no-op.

        Returns:
            Number of window records actually fetched (0 when nothing was
            done).
        """
        self._check_indices(np.asarray(indices, dtype=np.int64))
        return 0

    # -- prefix aggregates ---------------------------------------------------

    def prefix_range(self, selection) -> tuple[int, int] | None:
        """Window bounds if ``selection`` is answerable from prefix tables.

        Backends holding prefix-aggregate tables (:mod:`repro.core.prefix`)
        override this to return the half-open basic-window bounds ``(lo,
        hi)`` of an aligned, contiguous, non-empty selection they can serve
        in ``O(n^2)`` via :meth:`prefix_matrix`; ``None`` (the default, and
        for every fragmented/non-contiguous selection) routes the query
        down the direct streaming path.

        Args:
            selection: A :class:`~repro.core.segmentation.WindowSelection`.
        """
        return None

    def prefix_matrix(self, lo: int, hi: int) -> np.ndarray:
        """All-pairs correlation over windows ``[lo, hi)`` from prefix tables.

        Only meaningful for bounds previously returned by
        :meth:`prefix_range`; backends without prefix tables raise.
        """
        raise SketchError(
            f"the {self.backend_name!r} backend holds no prefix-aggregate "
            "tables"
        )

    def prefix_row(self, lo: int, hi: int, row: int) -> np.ndarray:
        """One correlation row over windows ``[lo, hi)`` from prefix tables.

        The ``O(n)`` anchor-row primitive Algorithm 5's pruning path uses
        (:func:`~repro.core.prefix.combine_row_prefix`): only row ``row`` of
        the cross table is touched, so an anchor row costs ``O(n)`` from the
        tables instead of re-streaming the whole selection. Only meaningful
        for bounds previously returned by :meth:`prefix_range`; backends
        without prefix tables raise.
        """
        raise SketchError(
            f"the {self.backend_name!r} backend holds no prefix-aggregate "
            "tables"
        )

    def materialize(self, indices: np.ndarray | None = None) -> Sketch:
        """Assemble a full in-memory :class:`Sketch` of the selection.

        This loads the selection's complete covariance tensor (in a single
        pass over the backend's records); use it for interop with
        sketch-consuming APIs (sweeps, Lemma 2 seeding), not on query hot
        paths.
        """
        if indices is None:
            indices = np.arange(self.n_windows, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        n = self.n_series
        if indices.size == 0:
            means = np.empty((n, 0))
            stds = np.empty((n, 0))
            sizes = np.empty(0)
            covs = np.empty((0, n, n))
        else:
            parts = list(self.iter_window_chunks(indices, indices.size))
            means = np.concatenate([p[0] for p in parts], axis=1)
            stds = np.concatenate([p[1] for p in parts], axis=1)
            sizes = np.concatenate([p[2] for p in parts])
            covs = np.concatenate([p[3] for p in parts], axis=0)
        return Sketch(
            names=list(self.names),
            window_size=self.window_size,
            means=means,
            stds=stds,
            covs=covs,
            sizes=sizes.astype(np.int64),
        )

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_windows):
            raise SketchError(
                f"window indices out of range [0, {self.n_windows}): {indices}"
            )
        return indices


def _raw_fragment(
    data: np.ndarray, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    from repro.core.exact import fragment_stats

    return fragment_stats(data, start, stop)


class InMemoryProvider(SketchProvider):
    """Provider over a fully materialized :class:`Sketch`.

    Args:
        sketch: The pre-computed sketch.
        data: Optional raw ``(n, L)`` matrix enabling arbitrary
            (non-aligned) query windows via head/tail fragments.
    """

    backend_name = "memory"
    thread_safe_reads = True  # pure array slicing over an immutable sketch

    def __init__(self, sketch: Sketch, data: np.ndarray | None = None) -> None:
        self._sketch = sketch
        if data is not None:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != (sketch.n_series, sketch.length):
                raise DataError(
                    f"raw data shape {data.shape} does not match the sketch's "
                    f"({sketch.n_series}, {sketch.length})"
                )
        self._data = data

    @property
    def sketch(self) -> Sketch:
        """The wrapped sketch."""
        return self._sketch

    @property
    def names(self) -> list[str]:
        return self._sketch.names

    @property
    def window_size(self) -> int:
        return self._sketch.window_size

    @property
    def sizes(self) -> np.ndarray:
        return self._sketch.sizes

    @property
    def has_raw_data(self) -> bool:
        return self._data is not None

    def window_stats(self, indices):
        idx = self._check_indices(indices)
        return (
            self._sketch.means[:, idx],
            self._sketch.stds[:, idx],
            self._sketch.sizes[idx].astype(np.float64),
        )

    def iter_cov_chunks(self, indices, chunk_windows):
        idx = self._check_indices(indices)
        if chunk_windows <= 0:
            raise SketchError("chunk_windows must be positive")
        for start in range(0, idx.size, chunk_windows):
            yield self._sketch.covs[idx[start : start + chunk_windows]]

    def cov_rows(self, indices, rows):
        idx = self._check_indices(indices)
        rows = np.asarray(rows, dtype=np.int64)
        return self._sketch.covs[idx][:, rows, :]

    def fragment(self, start, stop):
        if self._data is None:
            raise SketchError(_NO_RAW_MESSAGE)
        return _raw_fragment(self._data, start, stop)

    def materialize(self, indices=None):
        if indices is None:
            return self._sketch
        return self._sketch.select(np.asarray(indices, dtype=np.int64))


class _LruRecordCache:
    """Bounded LRU of window records (or per-window covariance matrices)."""

    def __init__(self, capacity: int | None) -> None:
        if capacity is not None and capacity < 0:
            raise DataError("cache capacity must be >= 0 or None (unbounded)")
        self._capacity = capacity
        self._entries: OrderedDict[int, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int | None:
        """Maximum entries held (``None`` = unbounded)."""
        return self._capacity

    def __contains__(self, key: int) -> bool:
        # Pure membership probe: no recency update, no hit/miss accounting
        # (prefetch planning must not distort query cache statistics).
        return key in self._entries

    def get(self, key: int):
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: int, value: object) -> None:
        if self._capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while self._capacity is not None and len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class StoreProvider(SketchProvider):
    """Lazy provider over a :class:`~repro.storage.base.SketchStore`.

    Window records are read from the store in batches only when a query
    needs them, and recently used records are kept in a bounded LRU cache —
    repeated queries over overlapping windows (sweeps, dashboards) hit the
    cache instead of the database. Queries through this provider never hold
    more than ``read_batch`` freshly read records plus the cache.

    Args:
        store: Open sketch store holding an ``"exact"`` sketch.
        cache_windows: LRU capacity in window records; ``0`` disables
            caching, ``None`` is unbounded. Default 64.
        read_batch: Maximum records fetched per ``read_windows`` call (the
            §3.4 batched reads). Default 32.
        data: Optional raw ``(n, L)`` matrix enabling arbitrary query
            windows; without it only aligned queries are answerable (the
            sketch-only deployment).
    """

    backend_name = "store"

    def __init__(
        self,
        store: SketchStore,
        cache_windows: int | None = 64,
        read_batch: int = 32,
        data: np.ndarray | None = None,
    ) -> None:
        if read_batch <= 0:
            raise DataError("read_batch must be positive")
        metadata = store.read_metadata()
        if metadata.kind != "exact":
            raise StorageError(
                f"store holds a {metadata.kind!r} sketch, expected 'exact'"
            )
        self._store = store
        self._metadata = metadata
        self._read_batch = read_batch
        self._cache = _LruRecordCache(cache_windows)
        n_windows = store.window_count()
        if n_windows == 0:
            raise StorageError("store holds no window records")
        # All windows are size B except possibly a shorter trailing one;
        # one record read settles the exact sizes without scanning the store.
        last = store.read_windows([n_windows - 1])[0]
        sizes = np.full(n_windows, metadata.window_size, dtype=np.int64)
        sizes[-1] = last.size
        self._sizes = sizes
        if data is not None:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != (len(metadata.names), int(sizes.sum())):
                raise DataError(
                    f"raw data shape {data.shape} does not match the store's "
                    f"({len(metadata.names)}, {int(sizes.sum())})"
                )
        self._data = data
        self.windows_read = 0

    @property
    def store(self) -> SketchStore:
        """The underlying sketch store."""
        return self._store

    @property
    def names(self) -> list[str]:
        return list(self._metadata.names)

    @property
    def window_size(self) -> int:
        return self._metadata.window_size

    @property
    def sizes(self) -> np.ndarray:
        return self._sizes

    @property
    def has_raw_data(self) -> bool:
        return self._data is not None

    @property
    def cache_hits(self) -> int:
        """Window records served from the LRU cache."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """Window records that had to be read from the store."""
        return self._cache.misses

    @property
    def cache_capacity(self) -> int | None:
        """LRU capacity in window records (``None`` = unbounded)."""
        return self._cache.capacity

    def prefetch(self, indices: np.ndarray) -> int:
        """Batch-read the missing window records of ``indices`` into the LRU.

        The §3.4 batched-read path applied across queued queries: the service
        layer hands this the deduplicated union of every in-queue request's
        windows, so each record crosses the store boundary once and the
        individual queries are then served from the cache. Selections larger
        than the cache capacity are skipped outright (prefetching would just
        churn the LRU).
        """
        idx = self._check_indices(np.unique(np.asarray(indices, dtype=np.int64)))
        capacity = self._cache.capacity
        if capacity == 0:
            return 0
        missing = [int(i) for i in idx if int(i) not in self._cache]
        if not missing or (capacity is not None and len(missing) > capacity):
            return 0
        for start in range(0, len(missing), self._read_batch):
            batch = missing[start : start + self._read_batch]
            for record in self._store.read_windows(batch):
                self._cache.put(record.index, record)
        self.windows_read += len(missing)
        return len(missing)

    def _iter_records(self, indices: np.ndarray) -> Iterator[WindowRecord]:
        """Yield records in order, reading misses from the store in batches."""
        indices = self._check_indices(indices)
        for start in range(0, indices.size, self._read_batch):
            batch = [int(i) for i in indices[start : start + self._read_batch]]
            cached: dict[int, WindowRecord] = {}
            missing: dict[int, None] = {}  # ordered de-dup of cache misses
            for i in batch:
                if i in cached or i in missing:
                    continue
                record = self._cache.get(i)
                if record is None:
                    missing[i] = None
                else:
                    cached[i] = record
            fetched: dict[int, WindowRecord] = {}
            if missing:
                for record in self._store.read_windows(list(missing)):
                    fetched[record.index] = record
                    self._cache.put(record.index, record)
                self.windows_read += len(missing)
            for i in batch:
                yield cached.get(i) or fetched[i]

    def window_stats(self, indices):
        indices = self._check_indices(indices)
        n = self.n_series
        means = np.empty((n, indices.size))
        stds = np.empty((n, indices.size))
        sizes = np.empty(indices.size)
        for k, record in enumerate(self._iter_records(indices)):
            means[:, k] = record.means
            stds[:, k] = record.stds
            sizes[k] = record.size
        return means, stds, sizes

    def iter_cov_chunks(self, indices, chunk_windows):
        indices = self._check_indices(indices)
        if chunk_windows <= 0:
            raise SketchError("chunk_windows must be positive")
        n = self.n_series
        for start in range(0, indices.size, chunk_windows):
            chunk_idx = indices[start : start + chunk_windows]
            chunk = np.empty((chunk_idx.size, n, n))
            for k, record in enumerate(self._iter_records(chunk_idx)):
                chunk[k] = record.pairs
            yield chunk

    def iter_window_chunks(self, indices, chunk_windows):
        # One record pass feeds both the statistics and the covariances, so
        # a query reads each window from the store exactly once (the default
        # implementation would read twice: stats pass + covariance pass).
        indices = self._check_indices(indices)
        if chunk_windows <= 0:
            raise SketchError("chunk_windows must be positive")
        n = self.n_series
        for start in range(0, indices.size, chunk_windows):
            chunk_idx = indices[start : start + chunk_windows]
            means = np.empty((n, chunk_idx.size))
            stds = np.empty((n, chunk_idx.size))
            sizes = np.empty(chunk_idx.size)
            covs = np.empty((chunk_idx.size, n, n))
            for k, record in enumerate(self._iter_records(chunk_idx)):
                means[:, k] = record.means
                stds[:, k] = record.stds
                sizes[k] = record.size
                covs[k] = record.pairs
            yield means, stds, sizes, covs

    def cov_rows(self, indices, rows):
        indices = self._check_indices(indices)
        rows = np.asarray(rows, dtype=np.int64)
        block = np.empty((indices.size, rows.size, self.n_series))
        for k, record in enumerate(self._iter_records(indices)):
            block[k] = record.pairs[rows, :]
        return block

    def fragment(self, start, stop):
        if self._data is None:
            raise SketchError(_NO_RAW_MESSAGE)
        return _raw_fragment(self._data, start, stop)


def _contiguous_slice(indices: np.ndarray) -> slice | None:
    """The ``slice`` equivalent of ``indices`` if they are an ascending run.

    Aligned query windows always select a contiguous ascending range of
    basic windows, so the memmap-backed provider can answer them with pure
    views; ``None`` means the selection genuinely needs fancy indexing.
    """
    if indices.size == 0:
        return slice(0, 0)
    first = int(indices[0])
    if indices.size == 1:
        return slice(first, first + 1)
    steps = np.diff(indices)
    if np.all(steps == 1):
        return slice(first, first + int(indices.size))
    return None


def _prefix_bounds(selection) -> tuple[int, int] | None:
    """Half-open window bounds of an aligned contiguous selection, else None.

    The shape every prefix-aggregate path requires: no raw head/tail
    fragments, at least one basic window, and an ascending run of indices.
    """
    if not selection.is_aligned:
        return None
    indices = np.asarray(selection.full_windows, dtype=np.int64)
    run = _contiguous_slice(indices)
    if run is None or run.stop <= run.start:
        return None
    return int(run.start), int(run.stop)


class MmapProvider(SketchProvider):
    """Zero-copy provider over an :class:`~repro.storage.mmap_store.MmapStore`.

    Window statistics and covariance chunks come back as slices of the
    store's read-only memory-mapped arrays: contiguous window selections
    (every aligned query) involve **no per-record deserialization and no
    copies** — the Lemma 1 kernels consume the mapped pages directly.
    Non-contiguous selections fall back to (vectorized) fancy indexing.

    Stores whose directory carries persisted ``prefix_*`` tables (written by
    :meth:`~repro.storage.mmap_store.MmapStore.build_prefix`) additionally
    serve contiguous aligned selections straight from two mapped prefix rows
    — ``O(n^2)`` per query regardless of how many windows the range spans,
    and still zero-copy.

    Args:
        source: An open :class:`~repro.storage.mmap_store.MmapStore`, or a
            store directory path (opened read-only — the form parallel query
            workers use to re-map a shared store in their own process).
        data: Optional raw ``(n, L)`` matrix enabling arbitrary
            (non-aligned) query windows via head/tail fragments.
        prefix: Serve contiguous selections from the store's persisted
            prefix tables when present (default). ``False`` forces every
            query down the direct streaming path (benchmarks and accuracy
            cross-checks).
    """

    backend_name = "mmap"
    thread_safe_reads = True  # read-only mapped arrays, no per-query state

    def __init__(
        self,
        source: "MmapStore | str | Path",
        data: np.ndarray | None = None,
        prefix: bool = True,
    ) -> None:
        from repro.storage.mmap_store import MmapStore

        if isinstance(source, MmapStore):
            store = source
        else:
            store = MmapStore(source, mode="r")
        metadata = store.read_metadata()
        if metadata.kind != "exact":
            raise StorageError(
                f"store holds a {metadata.kind!r} sketch, expected 'exact'"
            )
        means, stds, pairs, sizes = store.arrays()
        if sizes.size == 0 or not np.all(sizes > 0):
            missing = np.nonzero(sizes == 0)[0][:8].tolist()
            raise StorageError(
                f"mmap store {store.path} is incomplete: window records "
                f"{missing} are missing"
            )
        self._store = store
        self._metadata = metadata
        self._means = means
        self._stds = stds
        self._pairs = pairs
        self._sizes = sizes
        self._prefix = store.read_prefix() if prefix else None
        if data is not None:
            data = np.asarray(data, dtype=np.float64)
            expected = (len(metadata.names), int(sizes.sum()))
            if data.shape != expected:
                raise DataError(
                    f"raw data shape {data.shape} does not match the store's "
                    f"{expected}"
                )
        self._data = data

    @property
    def store(self) -> "MmapStore":
        """The underlying mmap store."""
        return self._store

    @property
    def path(self) -> str:
        """Store directory path — the parallel executor's worker handoff."""
        return self._store.path

    def read_generation(self) -> int:
        """The store's on-disk commit counter (seqlock sample).

        Passed through for readiness probes (``/healthz?deep=1`` reports
        it as ``store_generation``) and for torn-read detection: an odd
        value means a writer is mid-commit against the mapped files.
        """
        return self._store.read_generation()

    @property
    def names(self) -> list[str]:
        return list(self._metadata.names)

    @property
    def window_size(self) -> int:
        return self._metadata.window_size

    @property
    def sizes(self) -> np.ndarray:
        return np.asarray(self._sizes)

    @property
    def has_raw_data(self) -> bool:
        return self._data is not None

    def persisted_prefix(self):
        """The store's mapped prefix tables, or ``None`` (wrapper adoption)."""
        return self._prefix

    def prefix_range(self, selection):
        if self._prefix is None:
            return None
        bounds = _prefix_bounds(selection)
        if bounds is None or bounds[1] > self._prefix.covered:
            # Committed prefix rows may trail the store after an append
            # (until the next build_prefix); such ranges go direct.
            return None
        return bounds

    def prefix_matrix(self, lo, hi):
        if self._prefix is None:
            return super().prefix_matrix(lo, hi)
        from repro.core.prefix import combine_matrix_prefix

        return combine_matrix_prefix(self._prefix, lo, hi)

    def prefix_row(self, lo, hi, row):
        if self._prefix is None:
            return super().prefix_row(lo, hi, row)
        from repro.core.prefix import combine_row_prefix

        return combine_row_prefix(self._prefix, lo, hi, row)

    def window_stats(self, indices):
        idx = self._check_indices(indices)
        sl = _contiguous_slice(idx)
        if sl is not None:
            # Transposed slices of the (nw, n) maps are still views.
            means, stds, sizes = self._means[sl].T, self._stds[sl].T, self._sizes[sl]
        else:
            means, stds, sizes = self._means[idx].T, self._stds[idx].T, self._sizes[idx]
        return means, stds, sizes.astype(np.float64)

    def covs(self, indices):
        idx = self._check_indices(indices)
        sl = _contiguous_slice(idx)
        if sl is not None:
            return self._pairs[sl]
        return self._pairs[idx]

    def iter_cov_chunks(self, indices, chunk_windows):
        idx = self._check_indices(indices)
        if chunk_windows <= 0:
            raise SketchError("chunk_windows must be positive")
        for start in range(0, idx.size, chunk_windows):
            yield self.covs(idx[start : start + chunk_windows])

    def cov_rows(self, indices, rows):
        idx = self._check_indices(indices)
        rows = np.asarray(rows, dtype=np.int64)
        # Row selection necessarily gathers, but it only reads the pages of
        # the selected rows — a partition's worker never touches the rest.
        return self.covs(idx)[:, rows, :]

    def fragment(self, start, stop):
        if self._data is None:
            raise SketchError(_NO_RAW_MESSAGE)
        return _raw_fragment(self._data, start, stop)


class ChunkedBuildProvider(SketchProvider):
    """Memory-bounded on-demand sketching of raw data (no stored sketch).

    Per-series window statistics (``O(n * ns)``) are computed once up front;
    per-window covariance matrices (``O(n^2)`` each) are built only when a
    query asks for them, in row blocks of at most ``chunk_rows`` series via
    the parallel executor's :func:`~repro.parallel.executor.sketch_partition`
    primitive, and kept in a small LRU. Peak extra memory per window is
    ``O(chunk_rows * n)`` beyond the ``(n, n)`` result.

    Args:
        data: ``(n, L)`` matrix of synchronized series.
        window_size: Basic window size ``B``.
        names: Optional series identifiers.
        chunk_rows: Row-block height for covariance construction.
        cache_windows: LRU capacity in finished ``(n, n)`` window matrices.
    """

    backend_name = "chunked"

    def __init__(
        self,
        data: np.ndarray,
        window_size: int,
        names: list[str] | None = None,
        chunk_rows: int = 256,
        cache_windows: int | None = 8,
    ) -> None:
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim != 2:
            raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
        if chunk_rows <= 0:
            raise DataError("chunk_rows must be positive")
        self._data = matrix
        self._plan = BasicWindowPlan(length=matrix.shape[1], window_size=window_size)
        self._bounds = self._plan.boundaries
        means, stds, sizes = series_window_stats(matrix, self._bounds)
        self._means = means
        self._stds = stds
        self._sizes = sizes
        self._names = (
            list(names)
            if names is not None
            else [f"s{i:04d}" for i in range(matrix.shape[0])]
        )
        if len(self._names) != matrix.shape[0]:
            raise DataError(
                f"{len(self._names)} names for {matrix.shape[0]} series"
            )
        self._window_size = window_size
        self._chunk_rows = chunk_rows
        self._cache = _LruRecordCache(cache_windows)

    @property
    def names(self) -> list[str]:
        return self._names

    @property
    def window_size(self) -> int:
        return self._window_size

    @property
    def sizes(self) -> np.ndarray:
        return self._sizes

    @property
    def has_raw_data(self) -> bool:
        return True

    @property
    def cache_hits(self) -> int:
        """Window covariances served from the LRU cache."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """Window covariances built from raw data."""
        return self._cache.misses

    def _window_cov(self, index: int) -> np.ndarray:
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        from repro.parallel.executor import sketch_partition

        start, stop = int(self._bounds[index]), int(self._bounds[index + 1])
        block_data = self._data[:, start:stop]
        bounds = np.array([0, stop - start], dtype=np.int64)
        n = self._data.shape[0]
        cov = np.empty((n, n))
        for row_start in range(0, n, self._chunk_rows):
            rows = np.arange(row_start, min(row_start + self._chunk_rows, n))
            _, _, _, blocks = sketch_partition(rows, block_data, bounds)
            cov[rows] = blocks[0]
        cov = 0.5 * (cov + cov.T)
        self._cache.put(index, cov)
        return cov

    def window_stats(self, indices):
        idx = self._check_indices(indices)
        return (
            self._means[:, idx],
            self._stds[:, idx],
            self._sizes[idx].astype(np.float64),
        )

    def iter_cov_chunks(self, indices, chunk_windows):
        idx = self._check_indices(indices)
        if chunk_windows <= 0:
            raise SketchError("chunk_windows must be positive")
        n = self.n_series
        for start in range(0, idx.size, chunk_windows):
            chunk_idx = idx[start : start + chunk_windows]
            chunk = np.empty((chunk_idx.size, n, n))
            for k, j in enumerate(chunk_idx):
                chunk[k] = self._window_cov(int(j))
            yield chunk

    def cov_rows(self, indices, rows):
        idx = self._check_indices(indices)
        rows = np.asarray(rows, dtype=np.int64)
        block = np.empty((idx.size, rows.size, self.n_series))
        for k, j in enumerate(idx):
            block[k] = self._window_cov(int(j))[rows, :]
        return block

    def fragment(self, start, stop):
        return _raw_fragment(self._data, start, stop)

    def save_to(self, store: SketchStore, batch_size: int = 16) -> None:
        """Stream the full sketch into a store, one window batch at a time.

        Never materializes the ``(ns, n, n)`` tensor: windows are built,
        written, and released in batches of ``batch_size``.
        """
        if batch_size <= 0:
            raise StorageError("batch_size must be positive")
        store.write_metadata(
            StoreMetadata(
                names=tuple(self._names),
                window_size=self._window_size,
                kind="exact",
            )
        )
        batch: list[WindowRecord] = []
        for j in range(self.n_windows):
            batch.append(
                WindowRecord(
                    index=j,
                    means=self._means[:, j].copy(),
                    stds=self._stds[:, j].copy(),
                    pairs=self._window_cov(j),
                    size=int(self._sizes[j]),
                )
            )
            if len(batch) >= batch_size:
                store.write_windows(batch)
                batch = []
        if batch:
            store.write_windows(batch)


class PrefixProvider(SketchProvider):
    """Prefix-aggregate acceleration over any :class:`SketchProvider`.

    Contiguous aligned window selections — every aligned query, and the only
    shape the direct path pays ``O(ns * n^2)`` for — are answered in
    ``O(n^2)`` from cumulative Lemma 1 aggregates
    (:mod:`repro.core.prefix`): two table rows and a subtraction, regardless
    of how many windows the range spans. Everything else (fragmented
    windows, genuinely non-contiguous selections, row blocks, raw
    fragments) delegates to the wrapped provider unchanged, so the wrapper
    is a drop-in backend for every engine.

    The tables come from one of two places:

    * a wrapped :class:`MmapProvider` whose store carries *persisted*
      ``prefix_*`` arrays covering the whole store — adopted as read-only
      zero-copy views (nothing is built in memory);
    * otherwise an in-memory build: one streaming pass over the wrapped
      backend (each window record read once), run lazily up to the highest
      window a query has needed so far — or eagerly at construction with
      ``eager=True``. In-memory tables cost ``O(ns * n^2)`` floats, the
      same order as an in-memory sketch.

    Args:
        base: The wrapped sketch backend.
        chunk_windows: Window records folded per streaming build step.
        eager: Build the full tables at construction. Required for
            multi-threaded service execution over thread-safe bases (a lazy
            build mutates shared state on the query path).
    """

    def __init__(
        self,
        base: SketchProvider,
        chunk_windows: int = 256,
        eager: bool = False,
    ) -> None:
        if not isinstance(base, SketchProvider):
            raise DataError(f"expected a SketchProvider, got {type(base)!r}")
        if chunk_windows <= 0:
            raise SketchError("chunk_windows must be positive")
        self._base = base
        self._chunk_windows = chunk_windows
        self._stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._aggregates = None
        persisted = getattr(base, "persisted_prefix", None)
        if callable(persisted):
            aggregates = persisted()
            # Adopt persisted tables only when they cover the whole store;
            # partially built tables (append since the last build) are
            # read-only and cannot be extended in place, so fall back to an
            # in-memory build instead of serving a shrunken range.
            if aggregates is not None and aggregates.covered >= base.n_windows:
                self._aggregates = aggregates
        if eager:
            self._ensure(self.n_windows)

    def __getattr__(self, name: str):
        # Backend-specific surface (cache_hits, store, path, ...) passes
        # through so callers introspect the wrapped provider transparently.
        # Underscored names stay local: they would recurse before __init__
        # binds _base, and protocol probes (__getstate__, ...) must see this
        # object, not the base.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._base, name)

    @property
    def base(self) -> SketchProvider:
        """The wrapped sketch backend."""
        return self._base

    @property
    def aggregates(self):
        """The prefix tables built or adopted so far (``None`` before use)."""
        return self._aggregates

    @property
    def backend_name(self) -> str:  # type: ignore[override]
        # Queries through the wrapper still *read* from the base backend;
        # provenance reports that backend, with path="prefix" marking the
        # combination strategy.
        return self._base.backend_name

    @property
    def thread_safe_reads(self) -> bool:  # type: ignore[override]
        # A lazy build mutates the tables on the query path; only a fully
        # built wrapper over a thread-safe base is safe to share.
        return (
            self._base.thread_safe_reads
            and self._aggregates is not None
            and self._aggregates.covered >= self._base.n_windows
        )

    @property
    def names(self) -> list[str]:
        return self._base.names

    @property
    def window_size(self) -> int:
        return self._base.window_size

    @property
    def sizes(self) -> np.ndarray:
        return self._base.sizes

    @property
    def has_raw_data(self) -> bool:
        return self._base.has_raw_data

    def window_stats(self, indices):
        return self._base.window_stats(indices)

    def iter_cov_chunks(self, indices, chunk_windows):
        return self._base.iter_cov_chunks(indices, chunk_windows)

    def iter_window_chunks(self, indices, chunk_windows):
        return self._base.iter_window_chunks(indices, chunk_windows)

    def covs(self, indices):
        return self._base.covs(indices)

    def cov_rows(self, indices, rows):
        return self._base.cov_rows(indices, rows)

    def fragment(self, start, stop):
        return self._base.fragment(start, stop)

    def prefetch(self, indices):
        return self._base.prefetch(indices)

    def materialize(self, indices=None):
        return self._base.materialize(indices)

    def _ensure(self, hi: int):
        """Tables covering at least window ``hi``, extending lazily."""
        from repro.core.prefix import PrefixAggregates

        aggregates = self._aggregates
        if aggregates is None:
            n_windows = self._base.n_windows
            indices = np.arange(n_windows, dtype=np.int64)
            means, stds, sizes = self._base.window_stats(indices)
            means = np.ascontiguousarray(means, dtype=np.float64)
            stds = np.ascontiguousarray(stds, dtype=np.float64)
            sizes = np.asarray(sizes, dtype=np.float64)
            self._stats = (means, stds, sizes)
            offsets = means @ sizes / float(sizes.sum())
            aggregates = PrefixAggregates.allocate(offsets, n_windows)
            self._aggregates = aggregates
        while aggregates.covered < hi:
            start = aggregates.covered
            stop = min(start + self._chunk_windows, hi)
            means, stds, sizes = self._stats
            covs = self._base.covs(np.arange(start, stop, dtype=np.int64))
            aggregates.extend(
                means[:, start:stop], stds[:, start:stop], covs,
                sizes[start:stop],
            )
        if aggregates.covered >= self._base.n_windows:
            # Fully built: the cached O(n * ns) statistics copies exist only
            # to feed further extensions, so release them.
            self._stats = None
        return aggregates

    def prefix_range(self, selection):
        bounds = _prefix_bounds(selection)
        if bounds is None or bounds[1] > self.n_windows:
            return None
        return bounds

    def prefix_matrix(self, lo, hi):
        from repro.core.prefix import combine_matrix_prefix

        if not 0 <= lo < hi <= self.n_windows:
            raise SketchError(
                f"prefix range [{lo}, {hi}) outside the sketched windows "
                f"[0, {self.n_windows})"
            )
        return combine_matrix_prefix(self._ensure(hi), lo, hi)

    def prefix_row(self, lo, hi, row):
        from repro.core.prefix import combine_row_prefix

        if not 0 <= lo < hi <= self.n_windows:
            raise SketchError(
                f"prefix range [{lo}, {hi}) outside the sketched windows "
                f"[0, {self.n_windows})"
            )
        return combine_row_prefix(self._ensure(hi), lo, hi, row)
