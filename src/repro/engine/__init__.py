"""Pluggable sketch backends for the TSUBASA query engines."""

from repro.engine.providers import (
    ChunkedBuildProvider,
    InMemoryProvider,
    MmapProvider,
    PrefixProvider,
    SketchProvider,
    StoreProvider,
)

__all__ = [
    "SketchProvider",
    "InMemoryProvider",
    "StoreProvider",
    "ChunkedBuildProvider",
    "MmapProvider",
    "PrefixProvider",
]
