"""Pluggable sketch backends for the TSUBASA query engines."""

from repro.engine.providers import (
    ChunkedBuildProvider,
    InMemoryProvider,
    MmapProvider,
    SketchProvider,
    StoreProvider,
)

__all__ = [
    "SketchProvider",
    "InMemoryProvider",
    "StoreProvider",
    "ChunkedBuildProvider",
    "MmapProvider",
]
