"""TSUBASA: climate network construction on historical and real-time data.

A faithful, production-quality reproduction of *TSUBASA: Climate Network
Construction on Historical and Real-Time Data* (Xu, Liu, Nargesian —
SIGMOD 2022). The library provides:

* the exact basic-window sketch and Lemma 1/Lemma 2 correlation engines
  (:mod:`repro.core`),
* the DFT-based approximate competitor (:mod:`repro.approx`),
* the raw-data baseline (:mod:`repro.baseline`),
* pluggable sketch backends — in-memory, lazily store-backed with an LRU
  cache, or chunked on-demand (:mod:`repro.engine`),
* disk-backed sketch stores and the parallel pair-partitioned executor
  (:mod:`repro.storage`, :mod:`repro.parallel`),
* stream ingestion utilities (:mod:`repro.streams`),
* climate data substrates — synthetic spatially correlated fields plus
  format loaders (:mod:`repro.data`),
* network-science analysis on constructed networks (:mod:`repro.analysis`),
  and
* the declarative query API — serializable :class:`~repro.api.spec.QuerySpec`
  requests executed by the :class:`~repro.api.client.TsubasaClient` facade or
  multiplexed concurrently by the async
  :class:`~repro.api.service.TsubasaService` (:mod:`repro.api`).

Quickstart::

    from repro import TsubasaHistorical, generate_station_dataset

    dataset = generate_station_dataset(n_stations=50, n_points=2000, seed=7)
    engine = TsubasaHistorical(dataset.values, window_size=50,
                               names=dataset.names,
                               coordinates=dataset.coordinates)
    network = engine.network(query=(1999, 730), theta=0.75)
    print(network.n_edges)
"""

from repro.api import (
    QueryResult,
    QuerySpec,
    TsubasaClient,
    TsubasaRemoteClient,
    TsubasaServer,
    TsubasaService,
    WindowSpec,
    serve_in_thread,
)
from repro.approx import (
    ApproxSketch,
    ApproxSlidingState,
    TsubasaApproximate,
    build_approx_sketch,
)
from repro.baseline import BaselineExact, baseline_correlation_matrix, pearson
from repro.core import (
    BasicWindowPlan,
    ClimateNetwork,
    CorrelationMatrix,
    QueryWindow,
    Sketch,
    SlidingCorrelationState,
    TsubasaHistorical,
    TsubasaRealtime,
    build_sketch,
    count_edges,
    prune_threshold_matrix,
    similarity_ratio,
)
from repro.data import (
    StationDataset,
    generate_gridded_dataset,
    generate_station_dataset,
)
from repro.engine import (
    ChunkedBuildProvider,
    InMemoryProvider,
    SketchProvider,
    StoreProvider,
)
from repro.exceptions import (
    DataError,
    SegmentationError,
    ServiceError,
    SketchError,
    StorageError,
    StreamError,
    TsubasaError,
)

__version__ = "1.0.0"

__all__ = [
    "TsubasaHistorical",
    "TsubasaRealtime",
    "TsubasaApproximate",
    "TsubasaClient",
    "TsubasaService",
    "TsubasaServer",
    "TsubasaRemoteClient",
    "serve_in_thread",
    "QuerySpec",
    "WindowSpec",
    "QueryResult",
    "BaselineExact",
    "BasicWindowPlan",
    "QueryWindow",
    "Sketch",
    "SketchProvider",
    "InMemoryProvider",
    "StoreProvider",
    "ChunkedBuildProvider",
    "ApproxSketch",
    "SlidingCorrelationState",
    "ApproxSlidingState",
    "CorrelationMatrix",
    "ClimateNetwork",
    "build_sketch",
    "build_approx_sketch",
    "baseline_correlation_matrix",
    "pearson",
    "count_edges",
    "similarity_ratio",
    "prune_threshold_matrix",
    "StationDataset",
    "generate_station_dataset",
    "generate_gridded_dataset",
    "TsubasaError",
    "SegmentationError",
    "SketchError",
    "StorageError",
    "StreamError",
    "DataError",
    "ServiceError",
    "__version__",
]
