"""Fan real-time network snapshots out to bounded async subscriptions.

:class:`SnapshotHub` is the push half of the streaming story: a
:class:`~repro.streams.ingestion.StreamIngestor` produces
:class:`~repro.streams.ingestion.NetworkSnapshot` updates as basic windows
complete, and the hub delivers each update to every registered
:class:`Subscription` — the bridge the WebSocket server
(:mod:`repro.api.server`) uses to turn ``subscribe`` specs into
:class:`~repro.api.protocol.StreamEvent` pushes.

Two properties make it safe for a long-lived service:

* **Bounded buffers** — every subscription owns a bounded queue. A consumer
  that stops draining does not grow server memory: once its queue is full,
  the subscription is marked *lagged*, its buffered events are dropped, and
  its next read raises :class:`~repro.exceptions.StreamError` (the server
  maps that to a slow-consumer disconnect). Healthy subscribers are never
  affected by a slow peer.
* **Per-subscription thresholds** — a subscription may ask for its own
  ``theta`` at or above the ingestor's base threshold; the hub re-thresholds
  each snapshot's network by filtering edge weights (no recomputation) and
  tracks appeared/disappeared deltas against *that subscription's* previous
  event, so two dashboards watching different thresholds each see a
  consistent delta stream.

* **Global sequence numbers + bounded replay** — every published snapshot
  is stamped with one hub-wide monotonic ``seq`` and retained in a small
  replay ring. ``subscribe(resume_from=s)`` replays the snapshots after
  ``s`` straight from the ring, so a client that lost its connection
  resumes without missing (or re-seeing) an update; when the requested
  snapshots have aged out — or the hub itself restarted — the subscription
  starts with one explicit *gap* marker instead of silently skipping.

The hub is an event-loop component: :meth:`publish` must be called on the
loop (use :meth:`pump` to drive a batch source, running the CPU-bound
ingestion in an executor), and subscriptions are consumed with
``async for``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Iterable

import numpy as np

from repro.core.network import ClimateNetwork
from repro.exceptions import StreamError
from repro.streams.ingestion import NetworkSnapshot, StreamIngestor

__all__ = ["SnapshotHub", "Subscription"]


class Subscription:
    """One bounded stream of :class:`NetworkSnapshot` updates.

    Obtained from :meth:`SnapshotHub.subscribe`; consume with ``async for``.
    Iteration ends cleanly (``StopAsyncIteration``) when the hub closes, and
    raises :class:`~repro.exceptions.StreamError` when this subscriber
    lagged past its buffer bound and was dropped.
    """

    _END = object()  # queue sentinel: hub closed, stream complete

    def __init__(self, hub: "SnapshotHub", theta: float, max_pending: int) -> None:
        self._hub = hub
        self._theta = theta
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_pending)
        self._previous_edges: frozenset[tuple[str, str]] | None = None
        self._lagged = False
        self._closed = False
        self.delivered = 0  # snapshots consumed by this subscriber
        #: Hub sequence number of the most recently consumed snapshot
        #: (-1 before the first). This is the resume token a transport
        #: should hand to its client after each delivered event.
        self.last_seq = -1
        #: Set at subscribe time when a ``resume_from`` request could not
        #: be served gaplessly from the replay ring: a dict with
        #: ``missed`` (aged-out snapshot count, or ``None`` after a hub
        #: restart, when the old numbering is unknowable) and
        #: ``next_seq`` (the seq the stream continues at). Transports
        #: surface it as one explicit gap event before the first snapshot.
        self.pending_gap: dict | None = None

    @property
    def theta(self) -> float:
        """This subscription's network threshold."""
        return self._theta

    @property
    def lagged(self) -> bool:
        """Whether this subscriber fell behind and was dropped."""
        return self._lagged

    def _offer(self, seq: int, snapshot: NetworkSnapshot) -> bool:
        """Enqueue one update; returns False (and drops out) on overflow."""
        try:
            self._queue.put_nowait((seq, snapshot))
        except asyncio.QueueFull:
            # Slow consumer: drop the buffered backlog (it can no longer
            # form a gapless stream) and poison the queue so the consumer
            # fails fast instead of reading a stale prefix.
            self._lagged = True
            while not self._queue.empty():
                self._queue.get_nowait()
            self._queue.put_nowait(Subscription._END)
            return False
        return True

    def _end(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._queue.put_nowait(Subscription._END)
            except asyncio.QueueFull:
                pass  # consumer will hit the backlog, then closed state

    def close(self) -> None:
        """Detach from the hub (idempotent; pending events are discarded)."""
        self._hub._detach(self)
        self._end()

    def _rethreshold(self, snapshot: NetworkSnapshot) -> NetworkSnapshot:
        """The snapshot as seen at this subscription's threshold."""
        base = snapshot.network
        if self._theta == self._hub.theta:
            network = base
        else:
            # Edges above a higher threshold are a subset of the base
            # network's edges, so filtering weights is exact — no matrix
            # access, no recomputation.
            adjacency = base.adjacency & (base.weights > self._theta)
            network = ClimateNetwork(
                names=list(base.names),
                adjacency=adjacency,
                weights=base.weights,
                threshold=self._theta,
                coordinates=base.coordinates,
            )
        edges = network.edge_set()
        previous = self._previous_edges
        if previous is None:
            # First event: the full standing network is "appeared".
            appeared = frozenset(edges)
            disappeared = frozenset()
        else:
            appeared = frozenset(edges - previous)
            disappeared = frozenset(previous - edges)
        self._previous_edges = frozenset(edges)
        return NetworkSnapshot(
            timestamp=snapshot.timestamp,
            network=network,
            appeared=appeared,
            disappeared=disappeared,
        )

    def __aiter__(self) -> "Subscription":
        return self

    async def __anext__(self) -> NetworkSnapshot:
        if self._queue.empty():
            if self._lagged:
                raise StreamError(
                    "subscription lagged: the consumer fell behind its "
                    f"{self._queue.maxsize}-event buffer and was dropped"
                )
            if self._closed:
                # The END sentinel may have been lost to a full queue at
                # close time; the closed flag is the durable signal.
                raise StopAsyncIteration
        item = await self._queue.get()
        if item is Subscription._END:
            if self._lagged:
                raise StreamError(
                    "subscription lagged: the consumer fell behind its "
                    f"{self._queue.maxsize}-event buffer and was dropped"
                )
            raise StopAsyncIteration
        seq, snapshot = item
        self.delivered += 1
        self.last_seq = seq
        return self._rethreshold(snapshot)


class SnapshotHub:
    """Publish one ingestion loop's snapshots to many subscriptions.

    Args:
        ingestor: The snapshot source. The hub does not start it — drive it
            with :meth:`pump`, or publish snapshots yourself.
        max_pending: Default per-subscription buffer bound (events a
            subscriber may fall behind before being dropped).
        replay: Snapshots retained for ``resume_from`` replay. The ring
            holds full snapshots (network + deltas), so keep it modest;
            a resume reaching past it gets an explicit gap marker. ``0``
            disables replay (every resume gaps).
    """

    def __init__(
        self,
        ingestor: StreamIngestor,
        max_pending: int = 16,
        replay: int = 64,
    ) -> None:
        if max_pending <= 0:
            raise StreamError("max_pending must be positive")
        if replay < 0:
            raise StreamError("replay must be >= 0")
        self._ingestor = ingestor
        self._max_pending = max_pending
        self._subscriptions: set[Subscription] = set()
        self._closed = False
        self._seq = -1  # seq of the most recently published snapshot
        self._ring: deque[tuple[int, NetworkSnapshot]] = deque(
            maxlen=replay if replay > 0 else 1
        )
        self._replay = replay
        self.published = 0
        self.dropped_subscriptions = 0
        self.resumed_subscriptions = 0
        self.gapped_resumes = 0

    @property
    def ingestor(self) -> StreamIngestor:
        """The wrapped ingestion loop."""
        return self._ingestor

    @property
    def theta(self) -> float:
        """The ingestor's base snapshot threshold (subscription minimum)."""
        return self._ingestor.theta

    @property
    def window_points(self) -> int:
        """Length of the standing query window, in raw points."""
        engine = self._ingestor.engine
        return engine.window_size * engine.query_windows

    @property
    def window_size(self) -> int:
        """Basic window size ``B`` (the granularity of updates)."""
        return self._ingestor.engine.window_size

    @property
    def n_subscriptions(self) -> int:
        """Currently attached subscriptions."""
        return len(self._subscriptions)

    @property
    def closed(self) -> bool:
        """Whether the hub has been closed (no further events)."""
        return self._closed

    @property
    def last_seq(self) -> int:
        """Seq of the most recently published snapshot (-1 before any)."""
        return self._seq

    @property
    def replay_capacity(self) -> int:
        """Snapshots the replay ring retains for ``resume_from``."""
        return self._replay

    def subscribe(
        self,
        theta: float | None = None,
        max_pending: int | None = None,
        resume_from: int | None = None,
    ) -> Subscription:
        """Open a new subscription.

        Args:
            theta: Network threshold for this subscriber; defaults to the
                ingestor's base threshold, and must be **at or above** it
                (the base network is the substrate higher thresholds filter;
                lower ones would need a matrix recomputation per event).
            max_pending: Override the hub's per-subscription buffer bound.
            resume_from: Last seq the subscriber already consumed.
                Snapshots ``resume_from+1 ...`` still in the replay ring
                (and fitting the buffer bound) are pre-queued; anything
                older — or a token from a previous hub lifetime — sets
                :attr:`Subscription.pending_gap` so the transport can
                announce the discontinuity exactly once.

        Raises:
            StreamError: On a closed hub, a sub-base threshold, or a
                non-positive buffer bound.
        """
        if self._closed:
            raise StreamError("cannot subscribe to a closed hub")
        theta = self.theta if theta is None else float(theta)
        if not np.isfinite(theta) or theta < self.theta:
            raise StreamError(
                f"subscription theta {theta} must be >= the hub's base "
                f"threshold {self.theta}"
            )
        bound = self._max_pending if max_pending is None else int(max_pending)
        if bound <= 0:
            raise StreamError("max_pending must be positive")
        subscription = Subscription(self, theta, bound)
        if resume_from is not None:
            if int(resume_from) < 0:
                raise StreamError(
                    f"resume_from must be >= 0, got {resume_from!r}"
                )
            self._resume(subscription, int(resume_from), bound)
        self._subscriptions.add(subscription)
        return subscription

    def _resume(
        self, subscription: Subscription, resume_from: int, bound: int
    ) -> None:
        """Pre-queue the replayable tail after ``resume_from``, or gap."""
        self.resumed_subscriptions += 1
        subscription.last_seq = resume_from
        if resume_from > self._seq:
            # A token from beyond this hub's history: the stream (or the
            # whole server) restarted and the old numbering is gone. The
            # honest answer is one explicit gap; live events follow with
            # the new numbering.
            subscription.pending_gap = {
                "missed": None,
                "next_seq": self._seq + 1,
                "reason": "stream restarted; sequence numbers reset",
            }
            self.gapped_resumes += 1
            return
        replayable = [
            (seq, snapshot) for seq, snapshot in self._ring
            if seq > resume_from
        ]
        if self._replay == 0:
            replayable = []
        # Replay can't exceed the subscriber's own buffer bound: keep the
        # newest `bound` entries and fold the overflow into the gap.
        if len(replayable) > bound:
            replayable = replayable[-bound:]
        first_needed = resume_from + 1
        first_available = (
            replayable[0][0] if replayable else self._seq + 1
        )
        if first_available > first_needed:
            subscription.pending_gap = {
                "missed": first_available - first_needed,
                "next_seq": first_available,
                "reason": "requested snapshots aged out of the replay ring",
            }
            self.gapped_resumes += 1
        for seq, snapshot in replayable:
            subscription._offer(seq, snapshot)

    def _detach(self, subscription: Subscription) -> None:
        self._subscriptions.discard(subscription)

    def publish(self, snapshot: NetworkSnapshot) -> int:
        """Deliver one snapshot to every subscription (event-loop context).

        Returns:
            The number of subscriptions that accepted the event; lagged
            subscriptions are dropped (their next read raises).
        """
        if self._closed:
            raise StreamError("cannot publish to a closed hub")
        self._seq += 1
        seq = self._seq
        if self._replay > 0:
            self._ring.append((seq, snapshot))
        delivered = 0
        for subscription in list(self._subscriptions):
            if subscription._offer(seq, snapshot):
                delivered += 1
            else:
                self.dropped_subscriptions += 1
                self._detach(subscription)
        self.published += 1
        return delivered

    async def pump(
        self,
        source: Iterable[np.ndarray],
        max_updates: int | None = None,
        interval: float = 0.0,
    ) -> int:
        """Drive the ingestor from a batch source, publishing every snapshot.

        The CPU-bound ingestion step (sketching + Lemma 2 slides) runs in
        the default executor so the event loop — and every connected
        subscriber — stays responsive.

        Args:
            source: Iterable of ``(n, k)`` observation batches
                (:mod:`repro.streams.sources`).
            max_updates: Stop after this many published snapshots
                (``None`` = drain the source; never pass ``None`` with an
                endless source).
            interval: Optional pause in seconds between batches (simulated
                feed pacing).

        Returns:
            The number of snapshots published by this call.
        """
        loop = asyncio.get_running_loop()
        iterator = iter(source)
        published = 0
        while not self._closed:
            try:
                # next() may block on a slow source; keep it off the loop.
                batch = await loop.run_in_executor(None, next, iterator, None)
            except asyncio.CancelledError:
                raise
            if batch is None:
                break
            snapshots = await loop.run_in_executor(
                None, self._ingestor.push, batch
            )
            for snapshot in snapshots:
                if self._closed:
                    break
                self.publish(snapshot)
                published += 1
                if max_updates is not None and published >= max_updates:
                    return published
            if interval > 0.0:
                await asyncio.sleep(interval)
        return published

    def close(self) -> None:
        """End every subscription cleanly and refuse further events."""
        if self._closed:
            return
        self._closed = True
        for subscription in list(self._subscriptions):
            subscription._end()
        self._subscriptions.clear()
