"""Real-time stream ingestion utilities (Algorithm 3's outer loop)."""

from repro.streams.aligner import StreamAligner, align_to_grid
from repro.streams.hub import SnapshotHub, Subscription
from repro.streams.ingestion import NetworkSnapshot, StreamIngestor
from repro.streams.sources import ReplaySource, SyntheticSource

__all__ = [
    "StreamAligner",
    "align_to_grid",
    "NetworkSnapshot",
    "SnapshotHub",
    "StreamIngestor",
    "Subscription",
    "ReplaySource",
    "SyntheticSource",
]
