"""Synchronizing raw observations onto the fixed time resolution (§2.1).

The paper's preliminaries define the contract TSUBASA ingests: every series
has exactly one value per time-resolution tick; "if an x_i has missing value
at j, a value is interpolated or if multiple values appear between j and
j + gamma, an aggregate value is assigned." Real feeds violate both, so this
module provides the synchronization layer:

* :func:`align_to_grid` — batch form: map each series' irregular
  ``(timestamps, values)`` onto a regular grid, aggregating duplicates into
  the owning tick (mean) and linearly interpolating empty ticks.
* :class:`StreamAligner` — streaming form: accept out-of-order observations
  per series, and emit fully synchronized ``(n, k)`` blocks as soon as every
  tick up to the low-watermark is resolvable, carrying/interpolating gaps.

The output of either feeds :class:`~repro.core.realtime.TsubasaRealtime`
unchanged.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.exceptions import DataError, StreamError

__all__ = ["align_to_grid", "StreamAligner"]


def align_to_grid(
    timestamps: np.ndarray,
    values: np.ndarray,
    grid_start: float,
    resolution: float,
    n_ticks: int,
) -> np.ndarray:
    """Aggregate and interpolate one series onto a regular grid.

    Observation ``t`` belongs to tick ``floor((t - grid_start) / resolution)``.
    Multiple observations in a tick are averaged; ticks with none are
    linearly interpolated (edges carry the nearest value).

    Args:
        timestamps: Observation times, any order.
        values: Observation values, aligned with ``timestamps``.
        grid_start: Time of tick 0.
        resolution: Tick spacing ``gamma``; must be positive.
        n_ticks: Number of output ticks.

    Returns:
        Length-``n_ticks`` array of synchronized values.
    """
    stamps = np.asarray(timestamps, dtype=np.float64)
    vals = np.asarray(values, dtype=np.float64)
    if stamps.shape != vals.shape or stamps.ndim != 1:
        raise DataError(
            f"timestamps/values must be equal-length 1-D arrays, got "
            f"{stamps.shape} and {vals.shape}"
        )
    if resolution <= 0:
        raise DataError(f"resolution must be positive, got {resolution}")
    if n_ticks <= 0:
        raise DataError(f"n_ticks must be positive, got {n_ticks}")

    ticks = np.floor((stamps - grid_start) / resolution).astype(np.int64)
    in_range = (ticks >= 0) & (ticks < n_ticks)
    ticks, vals = ticks[in_range], vals[in_range]

    sums = np.zeros(n_ticks)
    counts = np.zeros(n_ticks)
    np.add.at(sums, ticks, vals)
    np.add.at(counts, ticks, 1.0)
    observed = counts > 0
    if not observed.any():
        raise DataError("no observations fall inside the grid")
    out = np.full(n_ticks, np.nan)
    out[observed] = sums[observed] / counts[observed]
    if not observed.all():
        idx = np.arange(n_ticks)
        out[~observed] = np.interp(idx[~observed], idx[observed], out[observed])
    return out


class StreamAligner:
    """Streaming synchronizer with a watermark-based emission policy.

    Observations arrive as ``(series, timestamp, value)`` in any order.
    Ticks are emitted once they fall ``lateness`` ticks behind the newest
    timestamp seen (the watermark), at which point each series' value is the
    mean of its observations in the tick, or a carry-forward of its last
    emitted value when the tick went unobserved (gap filling; the first tick
    requires every series to have reported at least once).

    Args:
        n_series: Number of synchronized series.
        grid_start: Time of tick 0.
        resolution: Tick spacing ``gamma``.
        lateness: How many ticks behind the watermark a tick must be before
            it is frozen and emitted (tolerates this much disorder).
    """

    def __init__(
        self,
        n_series: int,
        grid_start: float,
        resolution: float,
        lateness: int = 1,
    ) -> None:
        if n_series <= 0:
            raise StreamError("n_series must be positive")
        if resolution <= 0:
            raise StreamError("resolution must be positive")
        if lateness < 0:
            raise StreamError("lateness must be >= 0")
        self._n = n_series
        self._start = grid_start
        self._resolution = resolution
        self._lateness = lateness
        self._pending: dict[int, dict[int, list[float]]] = defaultdict(
            lambda: defaultdict(list)
        )  # tick -> series -> observations
        self._last_value = np.full(n_series, np.nan)
        self._next_tick = 0
        self._max_tick_seen = -1

    @property
    def next_tick(self) -> int:
        """Index of the next tick to be emitted."""
        return self._next_tick

    def _tick_of(self, timestamp: float) -> int:
        return int(np.floor((timestamp - self._start) / self._resolution))

    def push(self, series: int, timestamp: float, value: float) -> None:
        """Record one observation (out-of-order tolerated up to lateness)."""
        if not 0 <= series < self._n:
            raise StreamError(f"series {series} out of range [0, {self._n})")
        if not np.isfinite(value):
            raise DataError("observation value must be finite")
        tick = self._tick_of(timestamp)
        if tick < self._next_tick:
            raise StreamError(
                f"observation at tick {tick} arrived after that tick was "
                f"emitted (watermark lateness {self._lateness} exceeded)"
            )
        self._pending[tick][series].append(value)
        self._max_tick_seen = max(self._max_tick_seen, tick)

    def ready_ticks(self) -> int:
        """Number of ticks currently frozen and emittable."""
        frontier = self._max_tick_seen - self._lateness
        return max(0, frontier - self._next_tick + 1)

    def drain(self) -> np.ndarray:
        """Emit all frozen ticks as an ``(n, k)`` block (k may be 0).

        Raises:
            StreamError: If the very first tick has series that have never
                reported (there is nothing to carry forward).
        """
        k = self.ready_ticks()
        block = np.empty((self._n, k))
        for col in range(k):
            tick = self._next_tick + col
            per_series = self._pending.pop(tick, {})
            for series in range(self._n):
                observations = per_series.get(series)
                if observations:
                    self._last_value[series] = float(np.mean(observations))
                elif np.isnan(self._last_value[series]):
                    raise StreamError(
                        f"series {series} has no observation before tick "
                        f"{tick}; cannot gap-fill the first tick"
                    )
                block[series, col] = self._last_value[series]
        self._next_tick += k
        return block

    def flush(self) -> np.ndarray:
        """Emit everything seen so far, ignoring the lateness watermark."""
        self._max_tick_seen = max(
            self._max_tick_seen, self._next_tick - 1
        ) + self._lateness
        return self.drain()
