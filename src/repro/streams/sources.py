"""Stream sources: where real-time observations come from.

The paper's real-time setting ingests raw data "in chunks of size B" from a
perpetually updating feed (NOAA uploads in 24-hour increments). A source in
this library is simply an iterator of ``(n, k)`` batches; two implementations
cover testing and simulation needs:

* :class:`ReplaySource` — replays a recorded matrix in fixed-size batches,
  the standard way to drive the real-time engine from historical data.
* :class:`SyntheticSource` — an endless spatially correlated generator that
  continues an AR(1) factor-field process, for long-running simulations.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import StreamError

__all__ = ["ReplaySource", "SyntheticSource"]


class ReplaySource:
    """Replay a recorded ``(n, L)`` matrix in fixed-size batches.

    Args:
        data: Recorded observations.
        batch_size: Points per emitted batch; the final partial batch is
            emitted too (the ingestion layer buffers until a basic window
            completes).
        start: Column offset to start replaying from.
    """

    def __init__(self, data: np.ndarray, batch_size: int, start: int = 0) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise StreamError(f"expected a 2-D matrix, got shape {self._data.shape}")
        if batch_size <= 0:
            raise StreamError("batch_size must be positive")
        if not 0 <= start <= self._data.shape[1]:
            raise StreamError(f"start {start} outside [0, {self._data.shape[1]}]")
        self._batch_size = batch_size
        self._cursor = start

    @property
    def exhausted(self) -> bool:
        """Whether every recorded point has been emitted."""
        return self._cursor >= self._data.shape[1]

    def __iter__(self) -> Iterator[np.ndarray]:
        return self

    def __next__(self) -> np.ndarray:
        if self.exhausted:
            raise StopIteration
        stop = min(self._cursor + self._batch_size, self._data.shape[1])
        batch = self._data[:, self._cursor : stop]
        self._cursor = stop
        return batch


class SyntheticSource:
    """Endless spatially correlated observations (AR(1) factor field).

    Continues the generative model of
    :func:`repro.data.synthetic.generate_station_dataset`: ``k`` latent AR(1)
    factors mixed through a fixed loading matrix plus local AR(1) noise.

    Args:
        loadings: ``(n, k)`` site-to-factor loading matrix.
        batch_size: Points per emitted batch.
        seed: Deterministic seed.
        factor_phi: AR(1) coefficient of the latent factors.
        noise_phi: AR(1) coefficient of the local noise.
        noise_scale: Stationary std of the local noise.
    """

    def __init__(
        self,
        loadings: np.ndarray,
        batch_size: int,
        seed: int = 0,
        factor_phi: float = 0.98,
        noise_phi: float = 0.6,
        noise_scale: float = 1.0,
    ) -> None:
        self._loadings = np.asarray(loadings, dtype=np.float64)
        if self._loadings.ndim != 2:
            raise StreamError(
                f"expected an (n, k) loading matrix, got {self._loadings.shape}"
            )
        if batch_size <= 0:
            raise StreamError("batch_size must be positive")
        for name, phi in (("factor_phi", factor_phi), ("noise_phi", noise_phi)):
            if not 0.0 <= phi < 1.0:
                raise StreamError(f"{name} must be in [0, 1), got {phi}")
        self._batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self._factor_phi = factor_phi
        self._noise_phi = noise_phi
        self._noise_scale = noise_scale
        n, k = self._loadings.shape
        self._factor_state = self._rng.normal(0.0, 1.0, size=k)
        self._noise_state = self._rng.normal(0.0, noise_scale, size=n)

    def __iter__(self) -> Iterator[np.ndarray]:
        return self

    def __next__(self) -> np.ndarray:
        n, k = self._loadings.shape
        batch = np.empty((n, self._batch_size))
        f_innov = np.sqrt(1.0 - self._factor_phi**2)
        e_innov = self._noise_scale * np.sqrt(1.0 - self._noise_phi**2)
        for t in range(self._batch_size):
            self._factor_state = (
                self._factor_phi * self._factor_state
                + self._rng.normal(0.0, f_innov, size=k)
            )
            self._noise_state = (
                self._noise_phi * self._noise_state
                + self._rng.normal(0.0, e_innov, size=n)
            )
            batch[:, t] = self._loadings @ self._factor_state + self._noise_state
        return batch
