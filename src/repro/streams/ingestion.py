"""Stream ingestion: pumping a source into the real-time engine.

:class:`StreamIngestor` is the outer loop of Algorithm 3: it pulls batches
from a source, feeds them to a :class:`~repro.core.realtime.TsubasaRealtime`
engine, and invokes a callback with a fresh network snapshot every time a
basic window completes and the network is updated. It also keeps the edge
history that :mod:`repro.analysis.dynamics` consumes (blinking links,
stability analysis).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.network import ClimateNetwork
from repro.core.realtime import TsubasaRealtime
from repro.exceptions import StreamError

__all__ = ["NetworkSnapshot", "StreamIngestor"]


@dataclass(frozen=True)
class NetworkSnapshot:
    """One network update produced by the ingestion loop.

    Attributes:
        timestamp: Offset of the newest point folded into the network.
        network: The climate network after this update.
        appeared: Edges present now but not in the previous snapshot.
        disappeared: Edges present previously but not now.
    """

    timestamp: int
    network: ClimateNetwork
    appeared: frozenset[tuple[str, str]]
    disappeared: frozenset[tuple[str, str]]


class StreamIngestor:
    """Drive a real-time engine from a batch source (Algorithm 3 outer loop).

    Args:
        engine: The real-time TSUBASA engine to feed.
        theta: Threshold used for network snapshots.
        on_update: Optional callback invoked with each
            :class:`NetworkSnapshot`.
        keep_history: Retain all snapshots in :attr:`history` (disable for
            unbounded runs).
    """

    def __init__(
        self,
        engine: TsubasaRealtime,
        theta: float,
        on_update: Callable[[NetworkSnapshot], None] | None = None,
        keep_history: bool = True,
    ) -> None:
        self._engine = engine
        self._theta = theta
        self._on_update = on_update
        self._keep_history = keep_history
        self.history: list[NetworkSnapshot] = []
        self._previous_edges = engine.network(theta).edge_set()

    @classmethod
    def from_provider(
        cls,
        provider,
        query_windows: int,
        theta: float,
        on_update: Callable[[NetworkSnapshot], None] | None = None,
        keep_history: bool = True,
        coordinates: dict[str, tuple[float, float]] | None = None,
    ) -> "StreamIngestor":
        """Warm-start an ingestion loop from any sketch backend.

        Seeds a :class:`~repro.core.realtime.TsubasaRealtime` engine over the
        provider's trailing ``query_windows`` basic windows (e.g. a
        :class:`~repro.engine.providers.StoreProvider` over the sketches a
        previous process persisted) and wraps it in an ingestor, so a crashed
        or restarted consumer resumes streaming without replaying raw data.

        Args:
            provider: Any :class:`~repro.engine.providers.SketchProvider`
                holding the already-sketched past.
            query_windows: Standing query length in basic windows.
            theta: Threshold used for network snapshots.
            on_update: Optional per-snapshot callback.
            keep_history: Retain all snapshots in :attr:`history`.
            coordinates: Optional node positions attached to networks.

        Returns:
            A ready ingestion loop positioned at the provider's last offset.
        """
        engine = TsubasaRealtime.from_provider(
            provider, query_windows, coordinates=coordinates
        )
        return cls(engine, theta, on_update=on_update, keep_history=keep_history)

    @property
    def engine(self) -> TsubasaRealtime:
        """The wrapped real-time engine."""
        return self._engine

    @property
    def theta(self) -> float:
        """Snapshot threshold."""
        return self._theta

    def _emit(self) -> NetworkSnapshot:
        network = self._engine.network(self._theta)
        edges = network.edge_set()
        snapshot = NetworkSnapshot(
            timestamp=self._engine.now,
            network=network,
            appeared=frozenset(edges - self._previous_edges),
            disappeared=frozenset(self._previous_edges - edges),
        )
        self._previous_edges = edges
        if self._keep_history:
            self.history.append(snapshot)
        if self._on_update is not None:
            self._on_update(snapshot)
        return snapshot

    def push(self, batch: np.ndarray) -> list[NetworkSnapshot]:
        """Ingest one batch; returns a snapshot per completed basic window."""
        slides = self._engine.ingest(batch)
        return [self._emit() for _ in range(slides)]

    def run(
        self, source: Iterable[np.ndarray], max_updates: int | None = None
    ) -> list[NetworkSnapshot]:
        """Drain a source (or stop after ``max_updates`` network updates).

        Args:
            source: Iterable of ``(n, k)`` batches (see
                :mod:`repro.streams.sources`).
            max_updates: Stop after this many completed basic windows;
                ``None`` runs until the source is exhausted (never pass
                ``None`` with an endless source).

        Returns:
            The snapshots produced during this call.
        """
        if max_updates is not None and max_updates <= 0:
            raise StreamError("max_updates must be positive when given")
        produced: list[NetworkSnapshot] = []
        for batch in source:
            snapshots = self.push(batch)
            produced.extend(snapshots)
            if max_updates is not None and len(produced) >= max_updates:
                return produced[:max_updates]
        return produced
