"""Baseline: exact all-pair Pearson correlation straight from raw data.

The paper's baseline (§4.2) computes Eq. 1 for every pair over the query
window at query time, with no sketching — ``O(l * N^2)`` per query versus
TSUBASA's ``O((l / B) * N^2)``. Two granularities are provided:

* :func:`baseline_correlation_matrix` — one vectorized pass (what a
  practitioner would call ``numpy.corrcoef``); the fair in-memory baseline.
* :func:`baseline_pairwise_loop` — the literal pair-by-pair evaluation of
  Eq. 1, useful for validating the vectorized paths and for per-pair costing.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.segmentation import QueryWindow
from repro.exceptions import DataError

__all__ = [
    "pearson",
    "baseline_correlation_matrix",
    "baseline_pairwise_loop",
    "BaselineExact",
]


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Eq. 1: Pearson's correlation of two equal-length sequences.

    Returns 0.0 when either sequence is constant (zero variance), matching
    the library-wide convention.
    """
    ax = np.asarray(x, dtype=np.float64)
    ay = np.asarray(y, dtype=np.float64)
    if ax.shape != ay.shape or ax.ndim != 1:
        raise DataError(f"expected equal-length 1-D arrays, got {ax.shape}, {ay.shape}")
    dx = ax - ax.mean()
    dy = ay - ay.mean()
    denom = np.sqrt(np.sum(dx * dx)) * np.sqrt(np.sum(dy * dy))
    if denom <= 0.0:
        return 0.0
    return float(np.clip(np.sum(dx * dy) / denom, -1.0, 1.0))


def baseline_correlation_matrix(data: np.ndarray) -> np.ndarray:
    """All-pairs Pearson matrix of the rows of ``data`` (vectorized).

    Constant rows get zero off-diagonal correlations and a unit diagonal
    (``numpy.corrcoef`` would emit NaNs there).
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
    centered = matrix - matrix.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.sum(centered * centered, axis=1))
    denom = np.outer(norms, norms)
    corr = np.zeros((matrix.shape[0], matrix.shape[0]))
    np.divide(centered @ centered.T, denom, out=corr, where=denom > 0.0)
    np.clip(corr, -1.0, 1.0, out=corr)
    np.fill_diagonal(corr, 1.0)
    return corr


def baseline_pairwise_loop(data: np.ndarray) -> np.ndarray:
    """All-pairs Pearson matrix via the literal per-pair Eq. 1 loop."""
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    corr = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            corr[i, j] = corr[j, i] = pearson(matrix[i], matrix[j])
    return corr


class BaselineExact:
    """Query-time-only engine: no sketch, every query scans raw data.

    Args:
        data: ``(n, L)`` matrix of synchronized series.
        names: Optional series identifiers.
    """

    def __init__(self, data: np.ndarray, names: list[str] | None = None) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise DataError(f"expected a 2-D series matrix, got {self._data.shape}")
        if names is None:
            names = [f"s{i:04d}" for i in range(self._data.shape[0])]
        if len(names) != self._data.shape[0]:
            raise DataError(f"{len(names)} names for {self._data.shape[0]} series")
        self._names = list(names)

    def correlation_matrix(
        self, query: QueryWindow | tuple[int, int]
    ) -> CorrelationMatrix:
        """Exact correlation matrix over ``query``, computed from raw data."""
        if not isinstance(query, QueryWindow):
            end, length = query
            query = QueryWindow(end=end, length=length)
        if query.stop > self._data.shape[1]:
            raise DataError(
                f"query window ends at {query.end} but only "
                f"{self._data.shape[1]} points are stored"
            )
        values = baseline_correlation_matrix(self._data[:, query.slice()])
        return CorrelationMatrix(names=list(self._names), values=values)

    def network(
        self, query: QueryWindow | tuple[int, int], theta: float
    ) -> ClimateNetwork:
        """Exact climate network over ``query`` with threshold ``theta``."""
        return ClimateNetwork.from_matrix(self.correlation_matrix(query), theta)
