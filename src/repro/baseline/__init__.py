"""Raw-data baseline: exact Pearson with no sketching (§4.2)."""

from repro.baseline.naive import (
    BaselineExact,
    baseline_correlation_matrix,
    baseline_pairwise_loop,
    pearson,
)

__all__ = [
    "BaselineExact",
    "baseline_correlation_matrix",
    "baseline_pairwise_loop",
    "pearson",
]
